package tester

import (
	"context"
	"fmt"
	"strconv"

	"neurotest/internal/obs"
	"neurotest/internal/pattern"
	"neurotest/internal/snn"
	"neurotest/internal/stats"
	"neurotest/internal/unreliable"
	"neurotest/internal/variation"
)

// Outcome is the three-way verdict of an ATE test session on one chip.
// Plain RunChip knows only Pass/Fail; sessions over unreliable chips add
// Quarantine: the retest budget ran out before the answer stabilised, so
// the chip is routed to a manual re-probe lot instead of being binned.
type Outcome int

const (
	// Pass: every item matched (possibly after retests).
	Pass Outcome = iota
	// Fail: some item failed stably (immediately with no retest budget,
	// or confirmed by the retest/vote policy).
	Fail
	// Quarantine: the per-chip retest budget was exhausted while an item's
	// verdict was still disputed (or its readout kept dropping).
	Quarantine
)

// String renders the verdict as production binning labels.
func (o Outcome) String() string {
	switch o {
	case Pass:
		return "PASS"
	case Fail:
		return "FAIL"
	case Quarantine:
		return "QUARANTINE"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// RetestPolicy governs how a session responds to failing or dropped items.
//
// The zero value is the paper's deterministic flow: no retests, the first
// observation of every item is final — RunChipSession under the zero policy
// and a Reliable profile reproduces RunChip verdicts exactly (asserted by
// tests).
type RetestPolicy struct {
	// MaxRetests is the per-chip budget of extra item applications (beyond
	// the one baseline application each item gets). Retests of disputed
	// items cost 1 each; re-applications after dropped readouts cost
	// 1, 2, 4, … capped at MaxDropCost per consecutive drop — deterministic
	// "exponential backoff" accounting with no wall-clock sleeps: the
	// growing cost models the tester idling through longer and longer
	// settle times on a flaky readout channel.
	MaxRetests int
	// Vote enables best-two-of-three voting on disputed items: the initial
	// failing observation counts one vote, then retests run until either
	// pass or fail holds two votes. Without Vote a single retest decides
	// the item outright (classic retest-on-fail).
	Vote bool
}

// MaxDropCost caps the per-retry budget charge for consecutive dropped
// readouts of one item (the backoff ceiling).
const MaxDropCost = 8

// SessionReport is the outcome of one ATE session over one (possibly
// unreliable) chip, with the accounting needed to re-state the paper's
// test-length claims under flakiness.
type SessionReport struct {
	Outcome Outcome
	// FailedItem is the item that decided a Fail or Quarantine, or -1.
	FailedItem int
	// ItemsRun counts every item application, retests included.
	ItemsRun int
	// BaselineItems is the program length — what a reliable chip session
	// would run if it passed everything.
	BaselineItems int
	// Retests counts applications beyond each item's first attempt.
	Retests int
	// DroppedReads counts readouts lost to the flaky channel.
	DroppedReads int
	// BudgetSpent is how much of RetestPolicy.MaxRetests was consumed
	// (drop surcharges included).
	BudgetSpent int
}

// Amplification is the retest amplification of the session: extra items
// run ÷ baseline items. 0 for a reliable chip under any policy; the flaky
// experiment sweeps how it grows with intermittence and retest budget.
func (r SessionReport) Amplification() float64 {
	if r.BaselineItems == 0 {
		return 0
	}
	return float64(r.Retests) / float64(r.BaselineItems)
}

// String renders the session one-line, e.g. "FAIL@3 items=7 (+2 retests)".
func (r SessionReport) String() string {
	s := r.Outcome.String()
	if r.FailedItem >= 0 {
		s = fmt.Sprintf("%s@%d", s, r.FailedItem)
	}
	return fmt.Sprintf("%s items=%d (+%d retests, %d drops)", s, r.ItemsRun, r.Retests, r.DroppedReads)
}

// RunChipSession applies the full test program to one chip under test whose
// reliability is described by prof, under the retest policy. mods injects
// the die's physical defect (nil for a defect-free die); the profile's
// intermittence model gates whether that defect is active during each item
// application. vary models the die's frozen weight-variation tensor as in
// RunChip. seed makes the whole session — fault activation, readout noise
// and variation sampling — reproducible.
//
// With prof = unreliable.Reliable() and the zero policy this is exactly
// RunChip: first mismatch fails the chip, no retests, no quarantine.
func (a *ATE) RunChipSession(mods *snn.Modifiers, prof unreliable.Profile, vary variation.Model, policy RetestPolicy, seed uint64) (rep0 SessionReport) {
	ensureObs()
	timer := obs.StartTimer()
	defer func() { observeSession(timer, rep0) }()
	sess := prof.NewSession(seed)
	var errs *variation.ErrorTensor
	if !vary.Zero() {
		errs = vary.SampleError(a.ts.Arch, stats.NewRNG(seed^varySalt))
	}
	rep := SessionReport{Outcome: Pass, FailedItem: -1, BaselineItems: len(a.ts.Items)}
	budget := policy.MaxRetests

	currentCfg := -1
	var sim *snn.Simulator

	// apply runs one application of item i through the unreliable chip:
	// intermittence gates the defect, then the readout channel corrupts
	// (or drops) the simulated response.
	apply := func(i int, it pattern.Item, first bool) (snn.Result, error) {
		if it.ConfigIndex != currentCfg {
			net := errs.ApplyTo(a.nets[it.ConfigIndex])
			sim = snn.NewSimulator(net)
			currentCfg = it.ConfigIndex
		}
		m := mods
		if !sess.FaultActive() {
			m = nil
		}
		res := sim.Run(it.Pattern, it.Timesteps, it.Mode(), m)
		rep.ItemsRun++
		if !first {
			rep.Retests++
		}
		return sess.Observe(res)
	}

	// read applies item i until a readout survives the channel, charging
	// the budget 1, 2, 4, … (capped) per consecutive drop. ok=false means
	// the budget cannot cover the next retry: quarantine.
	read := func(i int, it pattern.Item, first bool) (snn.Result, bool) {
		cost := 1
		for {
			res, err := apply(i, it, first)
			if err == nil {
				return res, true
			}
			first = false
			rep.DroppedReads++
			if budget < cost {
				return snn.Result{}, false
			}
			budget -= cost
			rep.BudgetSpent += cost
			if cost < MaxDropCost {
				cost *= 2
			}
		}
	}

	quarantine := func(i int) SessionReport {
		rep.Outcome = Quarantine
		rep.FailedItem = i
		return rep
	}

	for i, it := range a.ts.Items {
		res, ok := read(i, it, true)
		if !ok {
			return quarantine(i)
		}
		if a.matches(res, a.goldenResult(i)) {
			continue
		}
		if policy.MaxRetests == 0 {
			// No-retest policy: the single observation is final (the
			// paper's production ATE behaviour).
			rep.Outcome = Fail
			rep.FailedItem = i
			return rep
		}
		// Disputed item: retest until the verdict stabilises. Without Vote
		// one retest decides; with Vote the first side to two total
		// observations wins (the initial failure counts one fail vote).
		needPass, needFail := 1, 1
		nPass, nFail := 0, 0
		if policy.Vote {
			needPass, needFail = 2, 2
			nFail = 1
		}
		for nPass < needPass && nFail < needFail {
			if budget < 1 {
				return quarantine(i)
			}
			budget--
			rep.BudgetSpent++
			res, ok := read(i, it, false)
			if !ok {
				return quarantine(i)
			}
			if a.matches(res, a.goldenResult(i)) {
				nPass++
			} else {
				nFail++
			}
		}
		if nFail >= needFail {
			rep.Outcome = Fail
			rep.FailedItem = i
			return rep
		}
	}
	return rep
}

// varySalt decorrelates the variation-sampling stream from the session's
// activation and readout streams.
const varySalt = 0x94D049BB133111EB

// SessionStats aggregates a population of chip sessions.
type SessionStats struct {
	Chips                  int
	Pass, Fail, Quarantine int
	// ItemsRun / Retests / DroppedReads / BudgetSpent sum the per-session
	// accounting; BaselineItems sums program lengths (chips × items).
	ItemsRun      int
	BaselineItems int
	Retests       int
	DroppedReads  int
	BudgetSpent   int
	// Errors holds structured worker failures (recovered panics); chips in
	// Errors are counted in none of the outcome tallies.
	Errors []error
}

// PassRate returns the percentage of chips binned Pass.
func (s SessionStats) PassRate() float64 { return s.rate(s.Pass) }

// FailRate returns the percentage of chips binned Fail.
func (s SessionStats) FailRate() float64 { return s.rate(s.Fail) }

// QuarantineRate returns the percentage of chips quarantined.
func (s SessionStats) QuarantineRate() float64 { return s.rate(s.Quarantine) }

func (s SessionStats) rate(n int) float64 {
	if s.Chips == 0 {
		return 0
	}
	return 100 * float64(n) / float64(s.Chips)
}

// Amplification is the population retest amplification: total extra items
// run ÷ total baseline items.
func (s SessionStats) Amplification() float64 {
	if s.BaselineItems == 0 {
		return 0
	}
	return float64(s.Retests) / float64(s.BaselineItems)
}

// add merges one session into the stats.
func (s *SessionStats) add(rep SessionReport) {
	switch rep.Outcome {
	case Pass:
		s.Pass++
	case Fail:
		s.Fail++
	case Quarantine:
		s.Quarantine++
	}
	s.ItemsRun += rep.ItemsRun
	s.BaselineItems += rep.BaselineItems
	s.Retests += rep.Retests
	s.DroppedReads += rep.DroppedReads
	s.BudgetSpent += rep.BudgetSpent
}

// merge folds worker-local stats into s. Chips is managed by the caller
// (only completed sessions count), so it is deliberately not summed here.
func (s *SessionStats) merge(o SessionStats) {
	s.Pass += o.Pass
	s.Fail += o.Fail
	s.Quarantine += o.Quarantine
	s.ItemsRun += o.ItemsRun
	s.BaselineItems += o.BaselineItems
	s.Retests += o.Retests
	s.DroppedReads += o.DroppedReads
	s.BudgetSpent += o.BudgetSpent
	s.Errors = append(s.Errors, o.Errors...)
}

// MergeSessionStats folds K partial session tallies over disjoint chip
// shards into the whole-population stats. Every field is an integer count,
// so the merge is exact: the rates and amplification of the merged stats
// are bit-identical to a single campaign over the whole population — the
// invariant the cluster coordinator relies on to re-assemble sharded
// /v1/sessions campaigns. Errors concatenate in argument order.
func MergeSessionStats(parts ...SessionStats) SessionStats {
	var out SessionStats
	for _, p := range parts {
		out.Chips += p.Chips
		out.merge(p)
	}
	return out
}

// MeasureSessions runs n independent chip sessions in parallel and
// aggregates their verdicts. mods selects chip i's physical defect (nil
// function or nil return = defect-free die); every chip gets its own
// order-independent derived seed, so results are reproducible regardless
// of scheduling. Worker panics are recovered into SessionStats.Errors
// instead of crashing the campaign.
func (a *ATE) MeasureSessions(n int, mods func(i int) *snn.Modifiers, prof unreliable.Profile, vary variation.Model, policy RetestPolicy, seed uint64) SessionStats {
	//lint:ignore unchecked-error context.Background() never cancels, and cancellation is the only error MeasureSessionsContext returns
	stats, _ := a.MeasureSessionsContext(context.Background(), n, mods, prof, vary, policy, seed)
	return stats
}

// MeasureSessionsContext is MeasureSessions with cooperative cancellation:
// workers stop claiming chips once ctx is cancelled (sessions already in
// flight finish their chip). On cancellation it returns ctx.Err() together
// with the partial stats, whose Chips counts only the sessions actually run
// — so the rates stay meaningful over the evaluated population.
func (a *ATE) MeasureSessionsContext(ctx context.Context, n int, mods func(i int) *snn.Modifiers, prof unreliable.Profile, vary variation.Model, policy RetestPolicy, seed uint64) (SessionStats, error) {
	return a.MeasureSessionsAtContext(ctx, identityIndices(max(n, 0)), mods, prof, vary, policy, seed)
}

// MeasureSessionsAtContext runs sessions for exactly the chips whose global
// population indices are listed in idx. Chip i's session seed derives from
// its global index — chipSeed(seed, i) — never from its position in idx or
// the worker that runs it, so running a partition of the population across
// separate calls (or cluster nodes) and folding the partial stats with
// MergeSessionStats reproduces the whole-population campaign bit-exactly.
func (a *ATE) MeasureSessionsAtContext(ctx context.Context, idx []int, mods func(i int) *snn.Modifiers, prof unreliable.Profile, vary variation.Model, policy RetestPolicy, seed uint64) (SessionStats, error) {
	var stats SessionStats
	if len(idx) == 0 {
		return stats, ctx.Err()
	}
	// Reject malformed reliability profiles before any session draws noise:
	// a NaN probability would not crash, it would silently bias every
	// verdict in the campaign (NaN compares false against every draw).
	if err := prof.Validate(); err != nil {
		stats.Errors = append(stats.Errors, err)
		return stats, err
	}
	ensureObs()
	timer := obs.StartTimer()
	defer func() { timer.ObserveElapsed(sessionsCampaignSeconds) }()
	ctx, span := obs.StartSpan(ctx, "measure")
	span.SetAttr("chips", strconv.Itoa(len(idx)))
	defer span.End()
	perChip := func(i int, w int) (rep SessionReport, err error) {
		defer func() {
			if p := recover(); p != nil {
				err = &WorkerError{Op: "session", Worker: w, Chip: i, Panic: p}
			}
		}()
		var m *snn.Modifiers
		if mods != nil {
			m = mods(i)
		}
		return a.RunChipSession(m, prof, vary, policy, chipSeed(seed, i)), nil
	}
	results, done := runWorkersCtx(ctx, len(idx), func(k, w int) SessionStats {
		i := idx[k]
		// Per-chip spans carry the binning verdict; distinct names (by
		// global chip index) give scheduling-independent span IDs under the
		// concurrent pool.
		_, chipSpan := obs.StartSpan(ctx, "chip-"+strconv.Itoa(i))
		var local SessionStats
		rep, err := perChip(i, w)
		if err != nil {
			local.Errors = append(local.Errors, err)
			chipSpan.SetAttr("outcome", "error")
		} else {
			local.add(rep)
			chipSpan.SetAttr("outcome", rep.Outcome.String())
		}
		chipSpan.End()
		return local
	})
	for k, r := range results {
		if !done[k] {
			continue
		}
		stats.Chips++
		stats.merge(r)
	}
	return stats, ctx.Err()
}
