package tester

import (
	"fmt"
	"testing"

	"neurotest/internal/core"
	"neurotest/internal/fault"
	"neurotest/internal/snn"
	"neurotest/internal/unreliable"
	"neurotest/internal/variation"
)

// The merge helpers are the cluster coordinator's correctness foundation:
// a campaign sharded K ways and re-assembled must equal the single-node
// campaign *bit-identically* — integer tallies AND the derived float rates.
// These property-style tests sweep shard counts and partition shapes
// (contiguous and strided, including empty and single shards) and compare
// with == / != on the floats on purpose: "no float drift" is the property.

// partitionContiguous splits [0, n) into k contiguous slices (some possibly
// empty when k > n).
func partitionContiguous(n, k int) [][]int {
	shards := make([][]int, k)
	for i := 0; i < n; i++ {
		s := i * k / n
		if s >= k {
			s = k - 1
		}
		shards[s] = append(shards[s], i)
	}
	return shards
}

// partitionStrided deals [0, n) round-robin across k shards — the shape a
// hash ring produces, where consecutive global indices land on different
// workers.
func partitionStrided(n, k int) [][]int {
	shards := make([][]int, k)
	for i := 0; i < n; i++ {
		shards[i%k] = append(shards[i%k], i)
	}
	return shards
}

func partitions(n, k int) map[string][][]int {
	return map[string][][]int{
		"contiguous": partitionContiguous(n, k),
		"strided":    partitionStrided(n, k),
	}
}

func TestMergeCoveragePartitionsExactly(t *testing.T) {
	arch := snn.Arch{6, 5, 4}
	g, merged := smallSuite(t, arch, core.NoVariation())
	ate := New(merged, nil)
	// A mixed universe with known undetected entries is more interesting
	// than the all-detected one, so include a couple of duplicate faults of
	// the weakest kind plus every model's full universe.
	var faults []fault.Fault
	for _, kind := range fault.Kinds() {
		faults = append(faults, fault.Universe(arch, kind)...)
	}
	values := g.Options().Values
	whole := ate.MeasureCoverage(faults, values)

	for k := 1; k <= 5; k++ {
		for shape, shards := range partitions(len(faults), k) {
			t.Run(fmt.Sprintf("%s-k%d", shape, k), func(t *testing.T) {
				parts := make([]CoverageResult, 0, k)
				for _, idx := range shards {
					sub := make([]fault.Fault, len(idx))
					for j, i := range idx {
						sub[j] = faults[i]
					}
					parts = append(parts, ate.MeasureCoverage(sub, values))
				}
				got := MergeCoverage(parts...)
				if got.Total != whole.Total || got.Detected != whole.Detected {
					t.Fatalf("merged tally %d/%d, want %d/%d",
						got.Detected, got.Total, whole.Detected, whole.Total)
				}
				if got.Coverage() != whole.Coverage() {
					t.Fatalf("merged Coverage() = %v, want bit-identical %v",
						got.Coverage(), whole.Coverage())
				}
				if len(got.Undetected) != len(whole.Undetected) {
					t.Fatalf("merged %d undetected, want %d",
						len(got.Undetected), len(whole.Undetected))
				}
				if len(got.Errors) != len(whole.Errors) {
					t.Fatalf("merged %d errors, want %d", len(got.Errors), len(whole.Errors))
				}
			})
		}
	}
}

func TestMergeCoverageEdges(t *testing.T) {
	if got := MergeCoverage(); got.Total != 0 || got.Detected != 0 || got.Coverage() != 0 {
		t.Errorf("zero-shard merge = %+v", got)
	}
	one := CoverageResult{Total: 7, Detected: 5, Undetected: []fault.Fault{{}, {}}}
	if got := MergeCoverage(one); got.Total != one.Total || got.Detected != one.Detected ||
		got.Coverage() != one.Coverage() || len(got.Undetected) != 2 {
		t.Errorf("single-shard merge = %+v, want %+v", got, one)
	}
	empty := CoverageResult{}
	if got := MergeCoverage(empty, one, empty); got.Coverage() != one.Coverage() {
		t.Errorf("empty shards disturbed the merge: %+v", got)
	}
}

func TestMergeChipTalliesEscapeExactly(t *testing.T) {
	arch := snn.Arch{6, 5, 4}
	g, merged := smallSuite(t, arch, core.NoVariation())
	ate := New(merged, nil)
	faults := fault.Universe(arch, fault.SWF)
	values := g.Options().Values
	vary := variation.Model{Sigma: 0.2}
	const seed = 99

	whole := ate.EscapeTally(faults, values, vary, seed)
	if whole.Clean != len(faults) {
		t.Fatalf("whole campaign: %d clean of %d", whole.Clean, len(faults))
	}
	pct, errs := ate.EscapeCampaign(faults, values, vary, seed)
	if len(errs) != 0 || pct != whole.Pct() {
		t.Fatalf("EscapeTally.Pct() = %v, EscapeCampaign = %v (errs %v)", whole.Pct(), pct, errs)
	}

	for k := 1; k <= 5; k++ {
		for shape, shards := range partitions(len(faults), k) {
			t.Run(fmt.Sprintf("%s-k%d", shape, k), func(t *testing.T) {
				parts := make([]ChipTally, 0, k)
				for _, idx := range shards {
					parts = append(parts, ate.EscapeTallyAt(faults, values, idx, vary, seed))
				}
				got := MergeChipTallies(parts...)
				if got.Hit != whole.Hit || got.Clean != whole.Clean {
					t.Fatalf("merged tally %d/%d, want %d/%d", got.Hit, got.Clean, whole.Hit, whole.Clean)
				}
				if got.Pct() != whole.Pct() {
					t.Fatalf("merged Pct() = %v, want bit-identical %v", got.Pct(), whole.Pct())
				}
			})
		}
	}
}

func TestMergeChipTalliesOverkillExactly(t *testing.T) {
	arch := snn.Arch{6, 5, 4}
	_, merged := smallSuite(t, arch, core.NoVariation())
	ate := New(merged, nil)
	vary := variation.Model{Sigma: 0.6}
	const nChips, seed = 40, 7

	whole := ate.OverkillTally(nChips, vary, seed)
	if whole.Clean != nChips {
		t.Fatalf("whole campaign: %d clean of %d", whole.Clean, nChips)
	}
	for k := 1; k <= 4; k++ {
		for shape, shards := range partitions(nChips, k) {
			t.Run(fmt.Sprintf("%s-k%d", shape, k), func(t *testing.T) {
				parts := make([]ChipTally, 0, k)
				for _, idx := range shards {
					parts = append(parts, ate.OverkillTallyAt(idx, vary, seed))
				}
				got := MergeChipTallies(parts...)
				if got.Hit != whole.Hit || got.Clean != whole.Clean || got.Pct() != whole.Pct() {
					t.Fatalf("merged = %d/%d (%v%%), want %d/%d (%v%%)",
						got.Hit, got.Clean, got.Pct(), whole.Hit, whole.Clean, whole.Pct())
				}
			})
		}
	}
}

func TestMergeChipTalliesEdges(t *testing.T) {
	if got := MergeChipTallies(); got.Hit != 0 || got.Clean != 0 || got.Pct() != 0 {
		t.Errorf("zero-shard merge = %+v", got)
	}
	one := ChipTally{Hit: 3, Clean: 9}
	if got := MergeChipTallies(one); got.Hit != 3 || got.Clean != 9 || len(got.Errors) != 0 {
		t.Errorf("single-shard merge = %+v", got)
	}
	if got := MergeChipTallies(ChipTally{}, one, ChipTally{}); got.Pct() != one.Pct() {
		t.Errorf("empty shards disturbed the merge: %+v", got)
	}
	if (ChipTally{Hit: 5}).Pct() != 0 {
		t.Errorf("Pct with zero clean chips must be 0")
	}
}

func TestMergeSessionStatsPartitionsExactly(t *testing.T) {
	arch := snn.Arch{6, 5, 4}
	g, merged := smallSuite(t, arch, core.NoVariation())
	ate := New(merged, nil)
	faults := fault.Universe(arch, fault.NASF)
	// Alternate defective and defect-free dies so every outcome bin fills.
	mods := func(i int) *snn.Modifiers {
		if i%3 == 0 {
			return faults[i%len(faults)].Modifiers(g.Options().Values)
		}
		return nil
	}
	prof := unreliable.Profile{
		Intermittence: unreliable.Intermittence{P: 0.6},
		Readout:       unreliable.Readout{DropP: 0.1},
	}
	policy := RetestPolicy{MaxRetests: 3, Vote: true}
	const nChips, seed = 30, 1234

	whole := ate.MeasureSessions(nChips, mods, prof, variation.None(), policy, seed)
	if whole.Chips != nChips {
		t.Fatalf("whole campaign ran %d chips, want %d", whole.Chips, nChips)
	}
	if whole.Fail == 0 || whole.Pass == 0 {
		t.Fatalf("degenerate population (pass=%d fail=%d quarantine=%d): test would prove nothing",
			whole.Pass, whole.Fail, whole.Quarantine)
	}

	for k := 1; k <= 5; k++ {
		for shape, shards := range partitions(nChips, k) {
			t.Run(fmt.Sprintf("%s-k%d", shape, k), func(t *testing.T) {
				parts := make([]SessionStats, 0, k)
				for _, idx := range shards {
					part, err := ate.MeasureSessionsAtContext(
						t.Context(), idx, mods, prof, variation.None(), policy, seed)
					if err != nil {
						t.Fatal(err)
					}
					parts = append(parts, part)
				}
				got := MergeSessionStats(parts...)
				if !sameSessionInts(got, whole) {
					t.Fatalf("merged stats = %+v, want %+v", got, whole)
				}
				// Derived rates are ratios of identical integers: bit-equal.
				if got.PassRate() != whole.PassRate() ||
					got.FailRate() != whole.FailRate() ||
					got.QuarantineRate() != whole.QuarantineRate() ||
					got.Amplification() != whole.Amplification() {
					t.Fatalf("merged rates drifted: %v/%v/%v amp %v, want %v/%v/%v amp %v",
						got.PassRate(), got.FailRate(), got.QuarantineRate(), got.Amplification(),
						whole.PassRate(), whole.FailRate(), whole.QuarantineRate(), whole.Amplification())
				}
			})
		}
	}
}

// sameSessionInts compares every integer field of two SessionStats (the
// Errors slice carries diagnostics, not tallies, and both sides must be
// error-free here anyway).
func sameSessionInts(a, b SessionStats) bool {
	return a.Chips == b.Chips &&
		a.Pass == b.Pass && a.Fail == b.Fail && a.Quarantine == b.Quarantine &&
		a.ItemsRun == b.ItemsRun && a.BaselineItems == b.BaselineItems &&
		a.Retests == b.Retests && a.DroppedReads == b.DroppedReads &&
		a.BudgetSpent == b.BudgetSpent &&
		len(a.Errors) == len(b.Errors)
}

func TestMergeSessionStatsEdges(t *testing.T) {
	if got := MergeSessionStats(); got.Chips != 0 || got.PassRate() != 0 {
		t.Errorf("zero-shard merge = %+v", got)
	}
	one := SessionStats{Chips: 4, Pass: 2, Fail: 1, Quarantine: 1, ItemsRun: 40, BaselineItems: 32, Retests: 8}
	if got := MergeSessionStats(one); !sameSessionInts(got, one) {
		t.Errorf("single-shard merge = %+v, want %+v", got, one)
	}
	if got := MergeSessionStats(SessionStats{}, one, SessionStats{}); !sameSessionInts(got, one) {
		t.Errorf("empty shards disturbed the merge: %+v", got)
	}
}
