// Package tester models the automatic test equipment (ATE) side of the
// flow: given a test set it derives golden responses from the nominal
// design, applies the tests to chips under test (simulated good or faulty
// dies, with or without weight variation), and computes the three quality
// metrics of the paper's evaluation — fault coverage, test escape and
// overkill (Sections 5.2, 5.3).
package tester

import (
	"context"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"neurotest/internal/fault"
	"neurotest/internal/faultsim"
	"neurotest/internal/obs"
	"neurotest/internal/pattern"
	"neurotest/internal/snn"
	"neurotest/internal/stats"
	"neurotest/internal/variation"
)

// ATE holds a test program with precomputed golden responses.
//
// Golden responses are simulated from the design *as programmed*: the same
// configuration transform (typically quantization) that the chip's weight
// memory applies is applied before deriving the expected outputs, exactly
// like a production flow that goldens against the post-quantization model.
type ATE struct {
	ts        *pattern.TestSet
	transform faultsim.ConfigTransform
	nets      []*snn.Network // transformed configuration per config index
	// golden holds eagerly simulated per-item responses when the golden and
	// chip transforms differ (NewSplit). ATEs built with New leave it nil
	// and derive golden responses lazily from the shared fault-simulation
	// Golden, whose good-chip traces double as the expected outputs — one
	// simulation of each item serves both roles.
	golden []snn.Result
	// goldens memoizes the fault-simulation Golden (good-chip traces plus
	// the downstream memo). It is held by pointer so tolerance clones share
	// it: one golden build and one warm memo serve every campaign over this
	// test program, which is the neurotestd artifact-cache access pattern.
	goldens *goldenShare
	// tolerance is the pass band on each output spike count (see
	// WithTolerance). 0 means exact comparison.
	tolerance int
}

// goldenShare memoizes one faultsim.Golden behind an ATE and all of its
// tolerance clones. A build panic (e.g. a transform rejecting a
// configuration) is captured once and surfaced as an error by every
// campaign instead of crashing the caller.
type goldenShare struct {
	once sync.Once
	g    *faultsim.Golden
	err  error
}

// faultGolden returns the memoized shared Golden, building it on first use.
func (a *ATE) faultGolden() (*faultsim.Golden, error) {
	a.goldens.once.Do(func() {
		defer func() {
			if p := recover(); p != nil {
				a.goldens.err = fmt.Errorf("tester: building golden traces: %v", p)
			}
		}()
		a.goldens.g = faultsim.NewGolden(a.ts, a.transform)
	})
	return a.goldens.g, a.goldens.err
}

// WithTolerance sets the per-output spike-count pass band and returns the
// ATE. A chip passes an item when every output count is within ±n of the
// golden count. Negative tolerances are a configuration error.
//
// The deterministic method uses n = 0 — its configurations engineer exact
// outputs. Statistical baselines decide pass/fail from firing-rate
// estimates whose resolution is bounded by their repetition budget, so
// their production testers accept counts within the estimation resolution;
// n = 1 models that band.
func (a *ATE) WithTolerance(n int) (*ATE, error) {
	if n < 0 {
		return nil, fmt.Errorf("tester: negative tolerance %d", n)
	}
	a.tolerance = n
	return a, nil
}

// CloneWithTolerance returns a copy of the ATE with its own pass band,
// sharing the (immutable) test set, configurations, golden responses and
// the memoized fault-simulation Golden (traces and downstream memo).
// Campaign methods never mutate the ATE, so one memoized ATE can serve
// concurrent campaigns under different tolerances via cheap clones — the
// access pattern of the neurotestd artifact cache — and those campaigns
// simulate golden traces once between them.
func (a *ATE) CloneWithTolerance(n int) (*ATE, error) {
	if n < 0 {
		return nil, fmt.Errorf("tester: negative tolerance %d", n)
	}
	c := *a
	c.tolerance = n
	return &c, nil
}

// matches reports whether got passes against want under the ATE's
// tolerance.
func (a *ATE) matches(got, want snn.Result) bool {
	if a.tolerance == 0 {
		return got.Equal(want)
	}
	if len(got.SpikeCounts) != len(want.SpikeCounts) {
		return false
	}
	for i := range got.SpikeCounts {
		d := got.SpikeCounts[i] - want.SpikeCounts[i]
		if d < -a.tolerance || d > a.tolerance {
			return false
		}
	}
	return true
}

// New builds an ATE for ts. transform may be nil (ideal weights). Golden
// responses and chips-under-test share the transform, the flow of a shop
// that goldens against the post-quantization model.
//
// New itself simulates nothing: golden responses are derived on first use
// from the same shared fault-simulation Golden the coverage campaigns read,
// so the good-chip traces of a test program are simulated exactly once no
// matter which campaign touches the ATE first.
func New(ts *pattern.TestSet, transform faultsim.ConfigTransform) *ATE {
	a := &ATE{ts: ts, transform: transform, goldens: &goldenShare{}}
	a.nets = make([]*snn.Network, len(ts.Configs))
	for i, cfg := range ts.Configs {
		a.nets[i] = cfg
		if transform != nil {
			a.nets[i] = transform(cfg)
		}
	}
	return a
}

// NewSplit builds an ATE whose golden responses come from goldenTransform'd
// configurations while chips under test are programmed through
// chipTransform. Production flows that golden against the *ideal* model but
// ship quantized silicon use NewSplit(ts, nil, quantize): any behavioural
// gap the quantizer opens then shows up as overkill, which is exactly the
// effect the paper's "overkill with quantization" rows measure.
func NewSplit(ts *pattern.TestSet, goldenTransform, chipTransform faultsim.ConfigTransform) *ATE {
	a := &ATE{ts: ts, transform: chipTransform, goldens: &goldenShare{}}
	a.nets = make([]*snn.Network, len(ts.Configs))
	golden := make([]*snn.Network, len(ts.Configs))
	for i, cfg := range ts.Configs {
		a.nets[i] = cfg
		golden[i] = cfg
		if chipTransform != nil {
			a.nets[i] = chipTransform(cfg)
		}
		if goldenTransform != nil {
			golden[i] = goldenTransform(cfg)
		}
	}
	sims := make([]*snn.Simulator, len(golden))
	for i, n := range golden {
		sims[i] = snn.NewSimulator(n)
	}
	for _, it := range ts.Items {
		res := sims[it.ConfigIndex].Run(it.Pattern, it.Timesteps, it.Mode(), nil)
		a.golden = append(a.golden, res)
	}
	return a
}

// TestSet returns the underlying test program.
func (a *ATE) TestSet() *pattern.TestSet { return a.ts }

// Golden returns the expected output of item i.
func (a *ATE) Golden(i int) snn.Result { return a.goldenResult(i) }

// goldenResult returns the expected output of item i. NewSplit ATEs read
// their eagerly simulated responses; New ATEs derive the response from the
// shared fault-simulation Golden, built on first use.
func (a *ATE) goldenResult(i int) snn.Result {
	if a.golden != nil {
		return a.golden[i]
	}
	g, err := a.faultGolden()
	if err != nil {
		// Unreachable in practice: a nil-golden ATE's transform already ran
		// over every configuration in New, so the lazy build cannot newly
		// fail. Campaign pools recover this into a WorkerError.
		//lint:ignore no-panic golden responses are a hard precondition of every campaign; pools recover
		panic(err)
	}
	return g.Result(i)
}

// Verdict is the outcome of testing one chip.
type Verdict struct {
	// Passed is true when every item matched its golden response.
	Passed bool
	// FailedItem is the index of the first mismatching item, or -1.
	FailedItem int
	// ItemsRun counts the items applied before the verdict.
	ItemsRun int
}

// RunChip applies the full test program to one chip under test.
//
// mods injects the die's physical defect (nil for a defect-free die). vary
// models the chip's weight variation: the die's per-synapse deviation tensor
// is sampled once (each memristive device carries a fixed programming
// offset) and shifts every configuration programmed into it — the paper's
// "modify each weight of the CUT by adding a random variable" (Section 5.3).
// rng drives that sampling and must be non-nil when vary is non-zero.
//
// Testing stops at the first failing item (production ATE behaviour).
func (a *ATE) RunChip(mods *snn.Modifiers, vary variation.Model, rng *stats.RNG) Verdict {
	if !vary.Zero() && rng == nil {
		//lint:ignore no-panic documented API contract on RunChip: non-zero variation requires an RNG
		panic("tester: variation requires an RNG")
	}
	errs := vary.SampleError(a.ts.Arch, rng)
	v := Verdict{Passed: true, FailedItem: -1}
	// Items are applied in order; a configuration is (re)programmed when
	// first encountered, then reused for consecutive items sharing it.
	currentCfg := -1
	var sim *snn.Simulator
	for i, it := range a.ts.Items {
		if it.ConfigIndex != currentCfg {
			net := errs.ApplyTo(a.nets[it.ConfigIndex])
			sim = snn.NewSimulator(net)
			currentCfg = it.ConfigIndex
		}
		res := sim.Run(it.Pattern, it.Timesteps, it.Mode(), mods)
		v.ItemsRun++
		if !a.matches(res, a.goldenResult(i)) {
			v.Passed = false
			v.FailedItem = i
			return v
		}
	}
	return v
}

// WorkerError is a structured error recording a recovered panic from a
// parallel campaign worker, with enough context to reproduce the failing
// evaluation. A panicking worker used to take down the whole test process;
// now it surfaces here instead.
type WorkerError struct {
	// Op names the campaign: "coverage", "overkill", "escape" or "session".
	Op string
	// Worker is the pool slot that hit the panic.
	Worker int
	// Chip is the chip index of population campaigns, or -1.
	Chip int
	// Fault is the fault under evaluation, when the campaign has one.
	Fault *fault.Fault
	// Panic is the recovered value.
	Panic any
}

// Error renders the failure with its fault/chip context.
func (e *WorkerError) Error() string {
	site := ""
	if e.Fault != nil {
		site = fmt.Sprintf(" fault %v", *e.Fault)
	}
	if e.Chip >= 0 {
		site += fmt.Sprintf(" chip %d", e.Chip)
	}
	return fmt.Sprintf("tester: %s worker %d panicked%s: %v", e.Op, e.Worker, site, e.Panic)
}

// CoverageResult summarises a fault-coverage campaign.
type CoverageResult struct {
	Total      int
	Detected   int
	Undetected []fault.Fault
	// Errors holds structured worker failures (recovered panics, typically
	// from malformed faults outside the architecture's universe). Errored
	// faults count neither as detected nor undetected.
	Errors []error
}

// Coverage returns the fault coverage percentage.
func (c CoverageResult) Coverage() float64 {
	if c.Total == 0 {
		return 0
	}
	return 100 * float64(c.Detected) / float64(c.Total)
}

// MergeCoverage folds K partial coverage results over disjoint fault shards
// into the whole-campaign result. All tallies are integers, so merging K
// disjoint shards equals the whole-universe campaign exactly — Coverage()
// is bit-identical, not approximately equal — which is what lets the
// cluster coordinator re-assemble sharded campaigns without float drift.
// Undetected faults and errors concatenate in argument order; callers that
// need the single-node ordering (the coordinator) pass shards sorted by
// their faults' global universe indices.
func MergeCoverage(parts ...CoverageResult) CoverageResult {
	var out CoverageResult
	for _, p := range parts {
		out.Total += p.Total
		out.Detected += p.Detected
		out.Undetected = append(out.Undetected, p.Undetected...)
		out.Errors = append(out.Errors, p.Errors...)
	}
	return out
}

// String renders like the paper's tables, e.g. "100.00%".
func (c CoverageResult) String() string {
	s := fmt.Sprintf("%.2f%% (%d/%d)", c.Coverage(), c.Detected, c.Total)
	if len(c.Errors) > 0 {
		s += fmt.Sprintf(" [%d errored]", len(c.Errors))
	}
	return s
}

// MeasureCoverage runs exhaustive (incremental) fault simulation of the test
// program over faults and reports coverage. Variation plays no role here —
// coverage is a property of the deterministic design, per Tables 5/6.
//
// Faults are evaluated in parallel over one shared, memoized
// faultsim.Golden (good-chip traces are simulated once per test program, no
// matter how many workers run or how many campaigns reuse the ATE) with a
// cheap per-worker evaluator; downstream memo hits cross workers through
// the Golden's sharded memo. A worker panic (e.g. a fault site outside the
// architecture) is recovered into CoverageResult.Errors instead of crashing
// the process — discarding only that worker's scratch evaluator, never the
// goldens — and the result is identical to the serial evaluation regardless
// of scheduling.
func (a *ATE) MeasureCoverage(faults []fault.Fault, values fault.Values) CoverageResult {
	//lint:ignore unchecked-error context.Background() never cancels, and cancellation is the only error MeasureCoverageContext returns
	res, _ := a.MeasureCoverageContext(context.Background(), faults, values)
	return res
}

// MeasureCoverageContext is MeasureCoverage with cooperative cancellation:
// workers stop claiming faults once ctx is cancelled, and the incremental
// engines abort their item scans between items. On cancellation it returns
// ctx.Err() together with the partial result — Total still counts every
// requested fault, but only faults evaluated before the cancellation appear
// as Detected, Undetected or Errors.
func (a *ATE) MeasureCoverageContext(ctx context.Context, faults []fault.Fault, values fault.Values) (CoverageResult, error) {
	res := CoverageResult{Total: len(faults)}
	if len(faults) == 0 {
		return res, ctx.Err()
	}
	ensureObs()
	timer := obs.StartTimer()
	defer func() { timer.ObserveElapsed(coverageCampaignSeconds) }()
	ctx, span := obs.StartSpan(ctx, "fault-simulate")
	span.SetAttr("faults", strconv.Itoa(len(faults)))
	defer span.End()
	golden, gerr := a.faultGolden()
	if gerr != nil {
		// Without goldens no fault can be evaluated; surface the build
		// failure once rather than crashing or erroring per fault.
		res.Errors = append(res.Errors, gerr)
		return res, ctx.Err()
	}
	// The pool claims faults in packed groups (same kind, same deviated
	// layer, ≤64 per group): each group runs one bit-parallel downstream
	// pass through the packed kernel instead of one scalar pass per fault.
	// A group that panics falls back to fault-at-a-time scalar evaluation,
	// so only the offending fault lands in Errors and the rest of its group
	// still gets verdicts — the per-fault semantics of the scalar pool.
	groups := faultsim.PackGroups(faults)
	evals := make([]*faultsim.Evaluator, poolWorkers(len(groups)))
	type groupVerdict struct {
		detected  []bool  // aligned with groups[gi]
		evaluated []bool  // verdict valid (not lost to cancellation)
		errs      []error // recovered per-fault worker errors
	}
	verdicts, done := runWorkersCtx(ctx, len(groups), func(gi, w int) (v groupVerdict) {
		idx := groups[gi]
		sub := make([]fault.Fault, len(idx))
		for k, i := range idx {
			sub[k] = faults[i]
		}
		batch := func() (out []bool, err error, ok bool) {
			defer func() {
				if p := recover(); p != nil {
					// Only the worker's scratch can be mid-mutation: discard
					// the evaluator and isolate the culprit fault-at-a-time.
					evals[w] = nil
					ok = false
				}
			}()
			if evals[w] == nil {
				evals[w] = golden.NewEvaluator(values)
			}
			out, err = evals[w].DetectsBatchContext(ctx, sub)
			return out, err, true
		}
		if out, err, ok := batch(); ok {
			if err != nil {
				// Cancelled mid-group: none of this group's verdicts count.
				return v
			}
			v.detected = out
			v.evaluated = make([]bool, len(idx))
			for k := range v.evaluated {
				v.evaluated[k] = true
			}
			return v
		}
		v.detected = make([]bool, len(idx))
		v.evaluated = make([]bool, len(idx))
		v.errs = make([]error, len(idx))
		for k := range sub {
			func() {
				defer func() {
					if p := recover(); p != nil {
						f := sub[k]
						v.errs[k] = &WorkerError{Op: "coverage", Worker: w, Chip: -1, Fault: &f, Panic: p}
						evals[w] = nil
					}
				}()
				if evals[w] == nil {
					evals[w] = golden.NewEvaluator(values)
				}
				det, err := evals[w].DetectsContext(ctx, sub[k])
				if err != nil {
					return // cancelled: leave evaluated[k] false
				}
				v.detected[k] = det
				v.evaluated[k] = true
			}()
		}
		return v
	})
	// Scatter the group verdicts back to global fault order, so Detected,
	// Undetected and Errors aggregate exactly like the scalar pool did.
	detected := make([]bool, len(faults))
	evaluated := make([]bool, len(faults))
	errAt := make([]error, len(faults))
	for gi, v := range verdicts {
		if !done[gi] {
			continue // group never claimed before cancellation
		}
		for k, i := range groups[gi] {
			if v.errs != nil && v.errs[k] != nil {
				errAt[i] = v.errs[k]
				continue
			}
			if v.evaluated != nil && v.evaluated[k] {
				evaluated[i] = true
				detected[i] = v.detected[k]
			}
		}
	}
	for i := range faults {
		switch {
		case errAt[i] != nil:
			res.Errors = append(res.Errors, errAt[i])
		case !evaluated[i]:
			// Never evaluated (or aborted mid-scan) because of cancellation.
		case detected[i]:
			res.Detected++
		default:
			res.Undetected = append(res.Undetected, faults[i])
		}
	}
	span.SetAttr("detected", strconv.Itoa(res.Detected))
	return res, ctx.Err()
}

// MeasureOverkill simulates nChips good chips under weight variation and
// returns the percentage that fail the test program (the paper uses 300
// chips). seed fixes the population; chips are simulated in parallel with
// order-independent per-chip seeds, so results are reproducible regardless
// of scheduling. A worker panic is re-raised synchronously on the caller's
// goroutine with fault context; OverkillCampaign returns it as an error
// instead.
func (a *ATE) MeasureOverkill(nChips int, vary variation.Model, seed uint64) float64 {
	pct, errs := a.OverkillCampaign(nChips, vary, seed)
	if len(errs) > 0 {
		//lint:ignore no-panic documented re-raise convenience; OverkillCampaign returns the errors instead
		panic(errs[0])
	}
	return pct
}

// OverkillCampaign is MeasureOverkill with recovered worker panics surfaced
// as structured errors; errored chips are excluded from the percentage's
// denominator.
func (a *ATE) OverkillCampaign(nChips int, vary variation.Model, seed uint64) (float64, []error) {
	return a.countChips("overkill", nChips, func(i int, rng *stats.RNG) bool {
		return !a.RunChip(nil, vary, rng).Passed
	}, seed)
}

// MeasureEscape simulates one faulty chip per fault in faults, each with its
// own variation sample, and returns the percentage that pass the test
// program (test escape). values parameterizes the injected faults; seed
// fixes the population. Worker panics re-raise synchronously; use
// EscapeCampaign to receive them as errors.
func (a *ATE) MeasureEscape(faults []fault.Fault, values fault.Values, vary variation.Model, seed uint64) float64 {
	pct, errs := a.EscapeCampaign(faults, values, vary, seed)
	if len(errs) > 0 {
		//lint:ignore no-panic documented re-raise convenience; EscapeCampaign returns the errors instead
		panic(errs[0])
	}
	return pct
}

// EscapeCampaign is MeasureEscape with recovered worker panics surfaced as
// structured errors; errored chips are excluded from the percentage's
// denominator.
func (a *ATE) EscapeCampaign(faults []fault.Fault, values fault.Values, vary variation.Model, seed uint64) (float64, []error) {
	return a.countChips("escape", len(faults), func(i int, rng *stats.RNG) bool {
		return a.RunChip(faults[i].Modifiers(values), vary, rng).Passed
	}, seed)
}

// ChipTally is the integer accounting of a population campaign (escape or
// overkill): how many chips satisfied the campaign predicate out of how many
// evaluated cleanly. Keeping the tally in integers — rather than the
// percentage the Measure* conveniences return — is what makes partial
// tallies over disjoint chip shards mergeable without float drift: the
// merged Pct() is bit-identical to the whole-population campaign.
type ChipTally struct {
	// Hit counts chips satisfying the predicate (escaped faulty chips for
	// escape campaigns, failed good chips for overkill).
	Hit int
	// Clean counts chips that evaluated without a worker error.
	Clean int
	// Errors holds structured worker failures; errored chips count in
	// neither Hit nor Clean.
	Errors []error
}

// Pct returns 100·Hit/Clean, or 0 when nothing evaluated cleanly.
func (t ChipTally) Pct() float64 {
	if t.Clean == 0 {
		return 0
	}
	return 100 * float64(t.Hit) / float64(t.Clean)
}

// MergeChipTallies folds K partial tallies over disjoint chip shards into
// the whole-population tally. Integer sums only, so the merge is exact.
func MergeChipTallies(parts ...ChipTally) ChipTally {
	var out ChipTally
	for _, p := range parts {
		out.Hit += p.Hit
		out.Clean += p.Clean
		out.Errors = append(out.Errors, p.Errors...)
	}
	return out
}

// EscapeTally is EscapeCampaign returning the raw integer tally instead of
// the percentage, for callers that merge shards (the cluster coordinator).
func (a *ATE) EscapeTally(faults []fault.Fault, values fault.Values, vary variation.Model, seed uint64) ChipTally {
	return a.EscapeTallyAt(faults, values, identityIndices(len(faults)), vary, seed)
}

// EscapeTallyAt evaluates only the faulty chips whose global indices are
// listed in idx (each an index into faults). Chip i's RNG seed derives from
// its global index, never from its position in idx or the worker that runs
// it, so a sharded campaign over a partition of the indices merges to the
// bit-identical whole-population tally.
func (a *ATE) EscapeTallyAt(faults []fault.Fault, values fault.Values, idx []int, vary variation.Model, seed uint64) ChipTally {
	return a.tallyChipsAt("escape", idx, func(i int, rng *stats.RNG) bool {
		return a.RunChip(faults[i].Modifiers(values), vary, rng).Passed
	}, seed)
}

// OverkillTally is OverkillCampaign returning the raw integer tally.
func (a *ATE) OverkillTally(nChips int, vary variation.Model, seed uint64) ChipTally {
	return a.OverkillTallyAt(identityIndices(nChips), vary, seed)
}

// OverkillTallyAt evaluates only the good chips whose global population
// indices are listed in idx, with the same global-index seed derivation as
// EscapeTallyAt.
func (a *ATE) OverkillTallyAt(idx []int, vary variation.Model, seed uint64) ChipTally {
	return a.tallyChipsAt("overkill", idx, func(i int, rng *stats.RNG) bool {
		return !a.RunChip(nil, vary, rng).Passed
	}, seed)
}

// countChips evaluates pred for n independent chips in parallel and returns
// the percentage that satisfied it, over the chips that evaluated cleanly.
// Chip i always receives the same derived seed. Worker panics are recovered
// into structured errors instead of killing the process.
func (a *ATE) countChips(op string, n int, pred func(i int, rng *stats.RNG) bool, seed uint64) (float64, []error) {
	t := a.tallyChipsAt(op, identityIndices(n), pred, seed)
	return t.Pct(), t.Errors
}

// tallyChipsAt evaluates pred for every global chip index in idx on the
// worker pool and tallies the hits. pred receives the global index, and the
// per-chip RNG seed derives from that global index, so any partition of a
// population across calls (or cluster nodes) reproduces the exact
// whole-population accounting.
func (a *ATE) tallyChipsAt(op string, idx []int, pred func(i int, rng *stats.RNG) bool, seed uint64) ChipTally {
	var tally ChipTally
	if len(idx) == 0 {
		return tally
	}
	ensureObs()
	timer := obs.StartTimer()
	defer func() { timer.ObserveElapsed(chipsCampaignSeconds) }()
	type verdict struct {
		hit bool
		err error
	}
	verdicts := runWorkers(len(idx), func(k, w int) (v verdict) {
		i := idx[k]
		defer func() {
			if p := recover(); p != nil {
				v.err = &WorkerError{Op: op, Worker: w, Chip: i, Panic: p}
			}
		}()
		v.hit = pred(i, stats.NewRNG(chipSeed(seed, i)))
		return v
	})
	for _, v := range verdicts {
		if v.err != nil {
			tally.Errors = append(tally.Errors, v.err)
			continue
		}
		tally.Clean++
		if v.hit {
			tally.Hit++
		}
	}
	return tally
}

// identityIndices returns [0, n).
func identityIndices(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// chipSeed derives chip i's RNG seed from a campaign seed — SplitMix-style
// decorrelation, independent of which worker runs the chip.
func chipSeed(seed uint64, i int) uint64 {
	return (seed + 0x9E3779B97F4A7C15*uint64(i+1)) ^ 0xD1B54A32D192ED03
}

// poolWorkers sizes a worker pool for n independent evaluations.
func poolWorkers(n int) int {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// runWorkers evaluates fn(i, w) for every i in [0, n) on a bounded worker
// pool and returns the results indexed by i, so aggregation order — and any
// error list built from it — is deterministic regardless of scheduling. w
// is the pool slot running the evaluation: fn may keep per-slot scratch
// state (each slot is a single goroutine).
func runWorkers[T any](n int, fn func(i, w int) T) []T {
	out, _ := runWorkersCtx(context.Background(), n, fn)
	return out
}

// runWorkersCtx is runWorkers with cooperative cancellation: workers stop
// claiming new indices once ctx is cancelled (evaluations already in flight
// run to completion). done[i] reports whether fn ran for index i — with an
// uncancelled context every index is done.
func runWorkersCtx[T any](ctx context.Context, n int, fn func(i, w int) T) (out []T, done []bool) {
	ensureObs()
	out = make([]T, n)
	done = make([]bool, n)
	workers := poolWorkers(n)
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				t := obs.StartTimer()
				out[i] = fn(i, w)
				t.ObserveElapsed(poolItemSeconds)
				poolEvaluations.Inc()
				done[i] = true
			}
		}(w)
	}
	wg.Wait()
	return out, done
}

// SampleFaults returns a deterministic stratified sample of at most max
// faults drawn from the universe of each listed kind, proportionally to
// universe sizes. When the budget fits (max >= number of non-empty kinds)
// every non-empty kind contributes at least one fault; with a smaller
// budget the kinds are served one fault each in listed order until the
// budget runs out. With max <= 0 or max >= total it returns the full
// concatenated universes.
func SampleFaults(arch snn.Arch, kinds []fault.Kind, max int, seed uint64) []fault.Fault {
	sizes := make([]int, len(kinds))
	total := 0
	for i, k := range kinds {
		sizes[i] = fault.UniverseSize(arch, k)
		total += sizes[i]
	}
	var out []fault.Fault
	if max <= 0 || max >= total {
		for _, k := range kinds {
			out = append(out, fault.Universe(arch, k)...)
		}
		return out
	}
	rng := stats.NewRNG(seed)
	want := sampleAllocation(sizes, max, total)
	for i, k := range kinds {
		if want[i] == 0 {
			continue
		}
		u := fault.Universe(arch, k)
		if want[i] >= len(u) {
			out = append(out, u...)
			continue
		}
		perm := rng.Perm(len(u))
		for _, idx := range perm[:want[i]] {
			out = append(out, u[idx])
		}
	}
	return out
}

// sampleAllocation splits a budget of max faults across kind universes of
// the given sizes, proportionally, with every non-empty kind getting at
// least one when the budget allows. Unlike naive per-kind rounding, the
// allocations are reconciled so they always sum to exactly min(max, total):
// the floor-and-bump pass can both overshoot (the at-least-one bumps
// exceed the budget) and undershoot (flooring loses up to one fault per
// kind); overshoot is trimmed from the largest allocations and undershoot
// topped up on the kinds with the most unsampled faults, both
// deterministically in listed-kind order on ties.
func sampleAllocation(sizes []int, max, total int) []int {
	want := make([]int, len(sizes))
	nonEmpty := 0
	for _, n := range sizes {
		if n > 0 {
			nonEmpty++
		}
	}
	if max < nonEmpty {
		// The at-least-one guarantee cannot fit: serve the first max
		// non-empty kinds one fault each.
		left := max
		for i, n := range sizes {
			if n > 0 && left > 0 {
				want[i] = 1
				left--
			}
		}
		return want
	}
	assigned := 0
	for i, n := range sizes {
		if n == 0 {
			continue
		}
		w := max * n / total
		if w < 1 {
			w = 1
		}
		if w > n {
			w = n
		}
		want[i] = w
		assigned += w
	}
	for assigned > max {
		// Trim the largest allocation that can spare a fault.
		best := -1
		for i, w := range want {
			if w > 1 && (best < 0 || w > want[best]) {
				best = i
			}
		}
		want[best]--
		assigned--
	}
	for assigned < max {
		// Top up the kind with the most unsampled faults. max < total
		// guarantees some kind has spare capacity.
		best := -1
		for i, w := range want {
			if w < sizes[i] && (best < 0 || sizes[i]-w > sizes[best]-want[best]) {
				best = i
			}
		}
		want[best]++
		assigned++
	}
	return want
}
