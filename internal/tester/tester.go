// Package tester models the automatic test equipment (ATE) side of the
// flow: given a test set it derives golden responses from the nominal
// design, applies the tests to chips under test (simulated good or faulty
// dies, with or without weight variation), and computes the three quality
// metrics of the paper's evaluation — fault coverage, test escape and
// overkill (Sections 5.2, 5.3).
package tester

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"neurotest/internal/fault"
	"neurotest/internal/faultsim"
	"neurotest/internal/pattern"
	"neurotest/internal/snn"
	"neurotest/internal/stats"
	"neurotest/internal/variation"
)

// ATE holds a test program with precomputed golden responses.
//
// Golden responses are simulated from the design *as programmed*: the same
// configuration transform (typically quantization) that the chip's weight
// memory applies is applied before deriving the expected outputs, exactly
// like a production flow that goldens against the post-quantization model.
type ATE struct {
	ts        *pattern.TestSet
	transform faultsim.ConfigTransform
	nets      []*snn.Network // transformed configuration per config index
	golden    []snn.Result   // per item
	// tolerance is the pass band on each output spike count (see
	// WithTolerance). 0 means exact comparison.
	tolerance int
}

// WithTolerance sets the per-output spike-count pass band and returns the
// ATE. A chip passes an item when every output count is within ±n of the
// golden count.
//
// The deterministic method uses n = 0 — its configurations engineer exact
// outputs. Statistical baselines decide pass/fail from firing-rate
// estimates whose resolution is bounded by their repetition budget, so
// their production testers accept counts within the estimation resolution;
// n = 1 models that band.
func (a *ATE) WithTolerance(n int) *ATE {
	if n < 0 {
		panic("tester: negative tolerance")
	}
	a.tolerance = n
	return a
}

// matches reports whether got passes against want under the ATE's
// tolerance.
func (a *ATE) matches(got, want snn.Result) bool {
	if a.tolerance == 0 {
		return got.Equal(want)
	}
	if len(got.SpikeCounts) != len(want.SpikeCounts) {
		return false
	}
	for i := range got.SpikeCounts {
		d := got.SpikeCounts[i] - want.SpikeCounts[i]
		if d < -a.tolerance || d > a.tolerance {
			return false
		}
	}
	return true
}

// New builds an ATE for ts. transform may be nil (ideal weights). Golden
// responses and chips-under-test share the transform, the flow of a shop
// that goldens against the post-quantization model.
func New(ts *pattern.TestSet, transform faultsim.ConfigTransform) *ATE {
	return NewSplit(ts, transform, transform)
}

// NewSplit builds an ATE whose golden responses come from goldenTransform'd
// configurations while chips under test are programmed through
// chipTransform. Production flows that golden against the *ideal* model but
// ship quantized silicon use NewSplit(ts, nil, quantize): any behavioural
// gap the quantizer opens then shows up as overkill, which is exactly the
// effect the paper's "overkill with quantization" rows measure.
func NewSplit(ts *pattern.TestSet, goldenTransform, chipTransform faultsim.ConfigTransform) *ATE {
	a := &ATE{ts: ts, transform: chipTransform}
	a.nets = make([]*snn.Network, len(ts.Configs))
	golden := make([]*snn.Network, len(ts.Configs))
	for i, cfg := range ts.Configs {
		a.nets[i] = cfg
		golden[i] = cfg
		if chipTransform != nil {
			a.nets[i] = chipTransform(cfg)
		}
		if goldenTransform != nil {
			golden[i] = goldenTransform(cfg)
		}
	}
	sims := make([]*snn.Simulator, len(golden))
	for i, n := range golden {
		sims[i] = snn.NewSimulator(n)
	}
	for _, it := range ts.Items {
		res := sims[it.ConfigIndex].Run(it.Pattern, it.Timesteps, it.Mode(), nil)
		a.golden = append(a.golden, res)
	}
	return a
}

// TestSet returns the underlying test program.
func (a *ATE) TestSet() *pattern.TestSet { return a.ts }

// Golden returns the expected output of item i.
func (a *ATE) Golden(i int) snn.Result { return a.golden[i] }

// Verdict is the outcome of testing one chip.
type Verdict struct {
	// Passed is true when every item matched its golden response.
	Passed bool
	// FailedItem is the index of the first mismatching item, or -1.
	FailedItem int
	// ItemsRun counts the items applied before the verdict.
	ItemsRun int
}

// RunChip applies the full test program to one chip under test.
//
// mods injects the die's physical defect (nil for a defect-free die). vary
// models the chip's weight variation: the die's per-synapse deviation tensor
// is sampled once (each memristive device carries a fixed programming
// offset) and shifts every configuration programmed into it — the paper's
// "modify each weight of the CUT by adding a random variable" (Section 5.3).
// rng drives that sampling and must be non-nil when vary is non-zero.
//
// Testing stops at the first failing item (production ATE behaviour).
func (a *ATE) RunChip(mods *snn.Modifiers, vary variation.Model, rng *stats.RNG) Verdict {
	if !vary.Zero() && rng == nil {
		panic("tester: variation requires an RNG")
	}
	errs := vary.SampleError(a.ts.Arch, rng)
	v := Verdict{Passed: true, FailedItem: -1}
	// Items are applied in order; a configuration is (re)programmed when
	// first encountered, then reused for consecutive items sharing it.
	currentCfg := -1
	var sim *snn.Simulator
	for i, it := range a.ts.Items {
		if it.ConfigIndex != currentCfg {
			net := errs.ApplyTo(a.nets[it.ConfigIndex])
			sim = snn.NewSimulator(net)
			currentCfg = it.ConfigIndex
		}
		res := sim.Run(it.Pattern, it.Timesteps, it.Mode(), mods)
		v.ItemsRun++
		if !a.matches(res, a.golden[i]) {
			v.Passed = false
			v.FailedItem = i
			return v
		}
	}
	return v
}

// CoverageResult summarises a fault-coverage campaign.
type CoverageResult struct {
	Total      int
	Detected   int
	Undetected []fault.Fault
}

// Coverage returns the fault coverage percentage.
func (c CoverageResult) Coverage() float64 {
	if c.Total == 0 {
		return 0
	}
	return 100 * float64(c.Detected) / float64(c.Total)
}

// String renders like the paper's tables, e.g. "100.00%".
func (c CoverageResult) String() string {
	return fmt.Sprintf("%.2f%% (%d/%d)", c.Coverage(), c.Detected, c.Total)
}

// MeasureCoverage runs exhaustive (incremental) fault simulation of the test
// program over faults and reports coverage. Variation plays no role here —
// coverage is a property of the deterministic design, per Tables 5/6.
func (a *ATE) MeasureCoverage(faults []fault.Fault, values fault.Values) CoverageResult {
	eng := faultsim.New(a.ts, values, a.transform)
	res := CoverageResult{Total: len(faults)}
	for _, f := range faults {
		if eng.Detects(f) {
			res.Detected++
		} else {
			res.Undetected = append(res.Undetected, f)
		}
	}
	return res
}

// MeasureOverkill simulates nChips good chips under weight variation and
// returns the percentage that fail the test program (the paper uses 300
// chips). seed fixes the population; chips are simulated in parallel with
// order-independent per-chip seeds, so results are reproducible regardless
// of scheduling.
func (a *ATE) MeasureOverkill(nChips int, vary variation.Model, seed uint64) float64 {
	if nChips <= 0 {
		return 0
	}
	failed := a.countChips(nChips, func(i int, rng *stats.RNG) bool {
		return !a.RunChip(nil, vary, rng).Passed
	}, seed)
	return 100 * float64(failed) / float64(nChips)
}

// MeasureEscape simulates one faulty chip per fault in faults, each with its
// own variation sample, and returns the percentage that pass the test
// program (test escape). values parameterizes the injected faults; seed
// fixes the population.
func (a *ATE) MeasureEscape(faults []fault.Fault, values fault.Values, vary variation.Model, seed uint64) float64 {
	if len(faults) == 0 {
		return 0
	}
	escaped := a.countChips(len(faults), func(i int, rng *stats.RNG) bool {
		return a.RunChip(faults[i].Modifiers(values), vary, rng).Passed
	}, seed)
	return 100 * float64(escaped) / float64(len(faults))
}

// countChips evaluates pred for n independent chips in parallel and returns
// how many satisfied it. Chip i always receives the same derived seed.
func (a *ATE) countChips(n int, pred func(i int, rng *stats.RNG) bool, seed uint64) int {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var next int64 = -1
	counts := make([]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				// SplitMix-style decorrelation of per-chip seeds.
				chipSeed := (seed + 0x9E3779B97F4A7C15*uint64(i+1)) ^ 0xD1B54A32D192ED03
				if pred(i, stats.NewRNG(chipSeed)) {
					counts[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, c := range counts {
		total += c
	}
	return total
}

// SampleFaults returns a deterministic stratified sample of up to max faults
// drawn from the universe of each listed kind, proportionally to universe
// sizes (at least one per non-empty kind). With max <= 0 or max >= total it
// returns the full concatenated universes.
func SampleFaults(arch snn.Arch, kinds []fault.Kind, max int, seed uint64) []fault.Fault {
	total := 0
	for _, k := range kinds {
		total += fault.UniverseSize(arch, k)
	}
	var out []fault.Fault
	if max <= 0 || max >= total {
		for _, k := range kinds {
			out = append(out, fault.Universe(arch, k)...)
		}
		return out
	}
	rng := stats.NewRNG(seed)
	for _, k := range kinds {
		u := fault.Universe(arch, k)
		want := max * len(u) / total
		if want < 1 {
			want = 1
		}
		if want >= len(u) {
			out = append(out, u...)
			continue
		}
		perm := rng.Perm(len(u))
		for _, idx := range perm[:want] {
			out = append(out, u[idx])
		}
	}
	return out
}
