package tester

import (
	"context"
	"errors"
	"strings"
	"testing"

	"neurotest/internal/core"
	"neurotest/internal/fault"
	"neurotest/internal/snn"
	"neurotest/internal/unreliable"
	"neurotest/internal/variation"
)

// TestReliableSessionIsRunChip is the acceptance criterion of the session
// layer: with intermittence p = 1 and retest budget 0 the session must
// reproduce the plain tester's verdicts exactly — the reliable case is a
// strict special case, item for item.
func TestReliableSessionIsRunChip(t *testing.T) {
	arch := snn.Arch{6, 5, 4}
	g, merged := smallSuite(t, arch, core.NoVariation())
	ate := New(merged, nil)
	prof := unreliable.Profile{Intermittence: unreliable.Intermittence{P: 1.0}}
	policy := RetestPolicy{MaxRetests: 0}

	check := func(name string, mods *snn.Modifiers) {
		t.Helper()
		want := ate.RunChip(mods, variation.None(), nil)
		got := ate.RunChipSession(mods, prof, variation.None(), policy, 7)
		wantOutcome := Pass
		if !want.Passed {
			wantOutcome = Fail
		}
		if got.Outcome != wantOutcome || got.FailedItem != want.FailedItem || got.ItemsRun != want.ItemsRun {
			t.Errorf("%s: session %+v, RunChip %+v", name, got, want)
		}
		if got.Retests != 0 || got.DroppedReads != 0 || got.Amplification() != 0 {
			t.Errorf("%s: reliable session did extra work: %+v", name, got)
		}
	}

	check("good chip", nil)
	for _, kind := range fault.Kinds() {
		for _, f := range fault.Universe(arch, kind) {
			check(f.String(), f.Modifiers(g.Options().Values))
		}
	}
}

func TestIntermittentFaultEscapesWithoutRetests(t *testing.T) {
	// A rarely-active fault passes the (short) program on many sessions —
	// the escape mechanism retest policies exist to fight. With p = 0 the
	// die behaves perfectly and must always pass.
	arch := snn.Arch{6, 5, 4}
	g, merged := smallSuite(t, arch, core.NoVariation())
	ate := New(merged, nil)
	f := fault.NewNeuronFault(fault.NASF, snn.NeuronID{Layer: 1, Index: 0})
	mods := f.Modifiers(g.Options().Values)

	never := unreliable.Profile{Intermittence: unreliable.Intermittence{P: 0}}
	rep := ate.RunChipSession(mods, never, variation.None(), RetestPolicy{}, 1)
	if rep.Outcome != Pass {
		t.Fatalf("inactive fault: %v", rep)
	}

	rare := unreliable.Profile{Intermittence: unreliable.Intermittence{P: 0.05}}
	escapes := 0
	for chip := 0; chip < 50; chip++ {
		if ate.RunChipSession(mods, rare, variation.None(), RetestPolicy{}, chipSeed(3, chip)).Outcome == Pass {
			escapes++
		}
	}
	if escapes == 0 {
		t.Errorf("p=0.05 fault never escaped a %d-item program over 50 chips", len(merged.Items))
	}
}

func TestRetestBudgetReducesNoiseOverkill(t *testing.T) {
	// A good die behind a jittery readout fails items by noise alone;
	// retest-on-fail with voting must recover most of that overkill.
	arch := snn.Arch{6, 5, 4}
	_, merged := smallSuite(t, arch, core.NoVariation())
	ate := New(merged, nil)
	prof := unreliable.Profile{
		Intermittence: unreliable.Always(),
		Readout:       unreliable.Readout{JitterP: 0.05},
	}
	n := 80
	strict := ate.MeasureSessions(n, nil, prof, variation.None(), RetestPolicy{}, 5)
	lenient := ate.MeasureSessions(n, nil, prof, variation.None(), RetestPolicy{MaxRetests: 5, Vote: true}, 5)
	if strict.FailRate() == 0 {
		t.Fatalf("jittery readout produced no overkill: %+v", strict)
	}
	if lenient.PassRate() <= strict.PassRate() {
		t.Errorf("retest policy did not recover overkill: strict pass %.1f%%, lenient pass %.1f%%",
			strict.PassRate(), lenient.PassRate())
	}
	if lenient.Amplification() <= 0 {
		t.Errorf("retests ran but amplification is %g", lenient.Amplification())
	}
	if strict.Amplification() != 0 {
		t.Errorf("zero-budget policy has amplification %g", strict.Amplification())
	}
}

func TestDroppedReadoutQuarantinesWithoutBudget(t *testing.T) {
	arch := snn.Arch{6, 5, 4}
	_, merged := smallSuite(t, arch, core.NoVariation())
	ate := New(merged, nil)
	dead := unreliable.Profile{
		Intermittence: unreliable.Always(),
		Readout:       unreliable.Readout{DropP: 1},
	}
	rep := ate.RunChipSession(nil, dead, variation.None(), RetestPolicy{}, 9)
	if rep.Outcome != Quarantine || rep.FailedItem != 0 {
		t.Errorf("dead readout, no budget: %v", rep)
	}
	// With budget the retries are charged 1, 2, 4, … until the budget
	// cannot cover the next one; a permanently dead channel must still
	// quarantine, deterministically, without spinning forever.
	rep = ate.RunChipSession(nil, dead, variation.None(), RetestPolicy{MaxRetests: 5}, 9)
	if rep.Outcome != Quarantine {
		t.Errorf("dead readout with budget: %v", rep)
	}
	if rep.BudgetSpent != 3 { // charges 1+2, then 4 > remaining 2
		t.Errorf("backoff accounting spent %d, want 3", rep.BudgetSpent)
	}
	if rep.DroppedReads == 0 {
		t.Errorf("no drops recorded: %v", rep)
	}
}

func TestFlakyReadoutRecoversWithBudget(t *testing.T) {
	arch := snn.Arch{6, 5, 4}
	_, merged := smallSuite(t, arch, core.NoVariation())
	ate := New(merged, nil)
	flaky := unreliable.Profile{
		Intermittence: unreliable.Always(),
		Readout:       unreliable.Readout{DropP: 0.3},
	}
	rep := ate.RunChipSession(nil, flaky, variation.None(), RetestPolicy{MaxRetests: 50}, 4)
	if rep.Outcome != Pass {
		t.Fatalf("good chip behind flaky readout: %v", rep)
	}
	if rep.DroppedReads == 0 || rep.BudgetSpent == 0 || rep.Retests == 0 {
		t.Errorf("drop accounting empty: %+v", rep)
	}
	if rep.ItemsRun != rep.BaselineItems+rep.Retests {
		t.Errorf("ItemsRun %d != baseline %d + retests %d", rep.ItemsRun, rep.BaselineItems, rep.Retests)
	}
}

func TestVoteConfirmsIntermittentFault(t *testing.T) {
	// An always-active fault under voting: the initial fail plus one
	// failing retest reach two fail votes — detected, one retest charged.
	arch := snn.Arch{6, 5, 4}
	g, merged := smallSuite(t, arch, core.NoVariation())
	ate := New(merged, nil)
	f := fault.NewNeuronFault(fault.NASF, snn.NeuronID{Layer: 1, Index: 0})
	rep := ate.RunChipSession(f.Modifiers(g.Options().Values), unreliable.Reliable(),
		variation.None(), RetestPolicy{MaxRetests: 4, Vote: true}, 11)
	if rep.Outcome != Fail || rep.FailedItem != 0 {
		t.Fatalf("voting verdict: %v", rep)
	}
	if rep.Retests != 1 || rep.BudgetSpent != 1 {
		t.Errorf("vote accounting: %+v", rep)
	}
	// Without Vote, the single passing retest of a now-dormant fault would
	// clear the item; a permanently active fault still fails.
	rep = ate.RunChipSession(f.Modifiers(g.Options().Values), unreliable.Reliable(),
		variation.None(), RetestPolicy{MaxRetests: 4}, 11)
	if rep.Outcome != Fail || rep.Retests != 1 {
		t.Errorf("single-retest verdict: %v", rep)
	}
}

func TestSessionDeterministicAcrossRuns(t *testing.T) {
	arch := snn.Arch{6, 5, 4}
	g, merged := smallSuite(t, arch, core.NoVariation())
	ate := New(merged, nil)
	f := fault.NewNeuronFault(fault.HSF, snn.NeuronID{Layer: 2, Index: 1})
	prof := unreliable.Profile{
		Intermittence: unreliable.Intermittence{P: 0.4, Burst: true, Persist: 0.7},
		Readout:       unreliable.Readout{JitterP: 0.1, DropP: 0.05},
	}
	policy := RetestPolicy{MaxRetests: 6, Vote: true}
	a := ate.RunChipSession(f.Modifiers(g.Options().Values), prof, variation.OfTheta(0.05, 0.5), policy, 21)
	b := ate.RunChipSession(f.Modifiers(g.Options().Values), prof, variation.OfTheta(0.05, 0.5), policy, 21)
	if a != b {
		t.Errorf("session not reproducible: %+v vs %+v", a, b)
	}
}

func TestMeasureSessionsTalliesAndDeterminism(t *testing.T) {
	arch := snn.Arch{6, 5, 4}
	g, merged := smallSuite(t, arch, core.NoVariation())
	ate := New(merged, nil)
	universe := fault.Universe(arch, fault.NASF)
	prof := unreliable.Profile{Intermittence: unreliable.Intermittence{P: 0.3}}
	policy := RetestPolicy{MaxRetests: 3, Vote: true}
	mods := func(i int) *snn.Modifiers {
		return universe[i%len(universe)].Modifiers(g.Options().Values)
	}
	n := 60
	s1 := ate.MeasureSessions(n, mods, prof, variation.None(), policy, 13)
	s2 := ate.MeasureSessions(n, mods, prof, variation.None(), policy, 13)
	if s1.Pass != s2.Pass || s1.Fail != s2.Fail || s1.Quarantine != s2.Quarantine ||
		s1.Retests != s2.Retests || s1.ItemsRun != s2.ItemsRun {
		t.Errorf("session campaign not reproducible: %+v vs %+v", s1, s2)
	}
	if s1.Pass+s1.Fail+s1.Quarantine != n {
		t.Errorf("outcome tallies %d+%d+%d != %d chips", s1.Pass, s1.Fail, s1.Quarantine, n)
	}
	if s1.Chips != n || len(s1.Errors) != 0 {
		t.Errorf("campaign stats: %+v", s1)
	}
	if s1.BaselineItems != n*len(merged.Items) {
		t.Errorf("baseline items %d", s1.BaselineItems)
	}
}

func TestMeasureSessionsSurvivesWorkerPanic(t *testing.T) {
	arch := snn.Arch{6, 5, 4}
	_, merged := smallSuite(t, arch, core.NoVariation())
	ate := New(merged, nil)
	mods := func(i int) *snn.Modifiers {
		if i == 3 {
			panic("injected session panic")
		}
		return nil
	}
	s := ate.MeasureSessions(8, mods, unreliable.Reliable(), variation.None(), RetestPolicy{}, 1)
	if len(s.Errors) != 1 {
		t.Fatalf("errors = %v", s.Errors)
	}
	var we *WorkerError
	if !errors.As(s.Errors[0], &we) || we.Chip != 3 || we.Op != "session" {
		t.Errorf("worker error context: %v", s.Errors[0])
	}
	if s.Pass != 7 || s.Fail != 0 || s.Quarantine != 0 {
		t.Errorf("clean chips mis-tallied: %+v", s)
	}
}

// TestMeasureCoveragePanicSurfaces is the hardening acceptance criterion:
// an evaluation that panics inside a parallel worker (here a fault site
// outside the architecture) must surface as a structured error in
// CoverageResult, not crash the test binary.
func TestMeasureCoveragePanicSurfaces(t *testing.T) {
	arch := snn.Arch{6, 5, 4}
	g, merged := smallSuite(t, arch, core.NoVariation())
	ate := New(merged, nil)
	faults := fault.Universe(arch, fault.NASF)
	bogus := fault.Fault{Kind: fault.NASF, Neuron: snn.NeuronID{Layer: 99, Index: 7}}
	mixed := append(append([]fault.Fault{}, faults[:2]...), bogus)
	mixed = append(mixed, faults[2:]...)

	res := ate.MeasureCoverage(mixed, g.Options().Values)
	if len(res.Errors) != 1 {
		t.Fatalf("errors = %v", res.Errors)
	}
	var we *WorkerError
	if !errors.As(res.Errors[0], &we) || we.Op != "coverage" || we.Fault == nil || *we.Fault != bogus {
		t.Errorf("worker error context: %v", res.Errors[0])
	}
	if res.Detected != len(faults) || len(res.Undetected) != 0 {
		t.Errorf("clean faults mis-tallied: %v", res)
	}
	if !strings.Contains(res.String(), "[1 errored]") {
		t.Errorf("String() hides errors: %s", res)
	}
}

func TestCampaignPanicContextOnCaller(t *testing.T) {
	// The float64 convenience wrappers re-raise worker panics on the
	// caller's goroutine with context — recoverable, not process-fatal.
	arch := snn.Arch{6, 5, 4}
	g, merged := smallSuite(t, arch, core.NoVariation())
	ate := New(merged, nil)
	bogus := []fault.Fault{{Kind: fault.SWF, Synapse: snn.SynapseID{Boundary: 0, Pre: 99, Post: 0}}}
	defer func() {
		p := recover()
		if p == nil {
			t.Fatalf("expected re-raised panic")
		}
		if we, ok := p.(*WorkerError); !ok || we.Op != "escape" {
			t.Errorf("re-raised panic lacks context: %v", p)
		}
	}()
	ate.MeasureEscape(bogus, g.Options().Values, variation.OfTheta(0.1, 0.5), 1)
}

func TestOutcomeAndReportStrings(t *testing.T) {
	if Pass.String() != "PASS" || Fail.String() != "FAIL" || Quarantine.String() != "QUARANTINE" {
		t.Errorf("outcome strings wrong")
	}
	if Outcome(9).String() == "" {
		t.Errorf("unknown outcome renders empty")
	}
	rep := SessionReport{Outcome: Fail, FailedItem: 3, ItemsRun: 7, BaselineItems: 10, Retests: 2}
	if !strings.Contains(rep.String(), "FAIL@3") {
		t.Errorf("report string %q", rep.String())
	}
	if rep.Amplification() != 0.2 {
		t.Errorf("amplification %g", rep.Amplification())
	}
	if (SessionReport{}).Amplification() != 0 {
		t.Errorf("zero report amplification")
	}
}

func TestSessionStatsRatesWithZeroSessions(t *testing.T) {
	// The zero-chip population hits every rate helper's division guard.
	var s SessionStats
	if s.PassRate() != 0 || s.FailRate() != 0 || s.QuarantineRate() != 0 {
		t.Errorf("zero-session rates: pass %g, fail %g, quarantine %g",
			s.PassRate(), s.FailRate(), s.QuarantineRate())
	}
	if s.Amplification() != 0 {
		t.Errorf("zero-session amplification %g", s.Amplification())
	}
}

func TestMeasureSessionsRejectsInvalidProfile(t *testing.T) {
	arch := snn.Arch{6, 5, 4}
	_, merged := smallSuite(t, arch, core.NoVariation())
	ate := New(merged, nil)
	bad := unreliable.Profile{Readout: unreliable.Readout{DropP: 1}}
	stats, err := ate.MeasureSessionsContext(context.Background(), 4, nil, bad,
		variation.None(), RetestPolicy{}, 1)
	if err == nil {
		t.Fatal("full-drop profile accepted by a session campaign")
	}
	if stats.Chips != 0 || len(stats.Errors) != 1 {
		t.Errorf("stats after rejection: %+v", stats)
	}
}

func TestSessionObservePropagatesDrops(t *testing.T) {
	// A readout channel near total loss: Session.Observe must surface
	// ErrDropped (not a zero Result) and count every loss, so the retest
	// machinery above it can spend budget instead of mis-binning.
	prof := unreliable.Profile{
		Intermittence: unreliable.Always(),
		Readout:       unreliable.Readout{DropP: 0.999999},
	}
	sess := prof.NewSession(3)
	res := snn.Result{SpikeCounts: []int{5, 7}}
	drops := 0
	for i := 0; i < 200; i++ {
		got, err := sess.Observe(res)
		if errors.Is(err, unreliable.ErrDropped) {
			drops++
			if got.SpikeCounts != nil {
				t.Fatalf("dropped readout returned data: %+v", got)
			}
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if drops != sess.Drops {
		t.Errorf("observed %d drops, session counted %d", drops, sess.Drops)
	}
	if drops < 190 {
		t.Errorf("near-total drop channel only dropped %d of 200 reads", drops)
	}
}
