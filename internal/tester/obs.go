package tester

import (
	"sync"

	"neurotest/internal/obs"
)

// Package-level instruments, registered once in the process-wide obs
// default registry. Campaign entry points and the worker pool observe into
// them; every instrument method is nil-safe and the registration is lazy,
// so library users who never scrape pay one sync.Once check per campaign.
var (
	obsOnce sync.Once

	coverageCampaignSeconds *obs.Histogram // MeasureCoverageContext wall time
	sessionsCampaignSeconds *obs.Histogram // MeasureSessionsContext wall time
	chipsCampaignSeconds    *obs.Histogram // countChips (overkill/escape) wall time
	poolItemSeconds         *obs.Histogram // one pooled evaluation (fault or chip)
	sessionSeconds          *obs.Histogram // one RunChipSession

	sessionOutcomes map[Outcome]*obs.Counter
	sessionRetests  *obs.Counter
	sessionDrops    *obs.Counter
	poolEvaluations *obs.Counter
)

// ensureObs registers the package instruments on first use.
func ensureObs() {
	obsOnce.Do(func() {
		r := obs.Default()
		campaign := func(op string) *obs.Histogram {
			return r.Histogram("tester_campaign_seconds",
				"campaign wall time by operation", nil, obs.L("op", op))
		}
		coverageCampaignSeconds = campaign("coverage")
		sessionsCampaignSeconds = campaign("sessions")
		chipsCampaignSeconds = campaign("chips")
		poolItemSeconds = r.Histogram("tester_pool_item_seconds",
			"latency of one pooled evaluation (a fault detection or a chip run)", nil)
		sessionSeconds = r.Histogram("tester_session_seconds",
			"latency of one chip test session", nil)
		sessionOutcomes = map[Outcome]*obs.Counter{
			Pass:       r.Counter("tester_session_outcomes_total", "chip sessions by verdict", obs.L("outcome", "pass")),
			Fail:       r.Counter("tester_session_outcomes_total", "chip sessions by verdict", obs.L("outcome", "fail")),
			Quarantine: r.Counter("tester_session_outcomes_total", "chip sessions by verdict", obs.L("outcome", "quarantine")),
		}
		sessionRetests = r.Counter("tester_session_retests_total",
			"item applications beyond each item's first attempt")
		sessionDrops = r.Counter("tester_session_dropped_reads_total",
			"readouts lost to the flaky channel")
		poolEvaluations = r.Counter("tester_pool_evaluations_total",
			"pooled evaluations run across all campaigns")
	})
}

// observeSession records one finished session's latency, verdict and retest
// accounting.
func observeSession(t obs.Timer, rep SessionReport) {
	ensureObs()
	t.ObserveElapsed(sessionSeconds)
	sessionOutcomes[rep.Outcome].Inc()
	sessionRetests.Add(int64(rep.Retests))
	sessionDrops.Add(int64(rep.DroppedReads))
}
