package tester

import (
	"context"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"neurotest/internal/core"
	"neurotest/internal/fault"
	"neurotest/internal/snn"
	"neurotest/internal/unreliable"
	"neurotest/internal/variation"
)

// suiteFor generates the merged no-variation suite for arch, shared by the
// cancellation tests.
func suiteFor(t *testing.T, arch snn.Arch) (*ATE, []fault.Fault, fault.Values) {
	t.Helper()
	params := snn.DefaultParams()
	values := fault.PaperValues(params.Theta)
	g, err := core.NewGenerator(core.Options{
		Arch: arch, Params: params, Values: values,
		Regime: core.NoVariation(), Timesteps: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, merged := g.GenerateAll()
	var universe []fault.Fault
	for _, k := range fault.Kinds() {
		universe = append(universe, fault.Universe(arch, k)...)
	}
	return New(merged, nil), universe, values
}

func TestMeasureCoverageContextBackgroundMatchesPlain(t *testing.T) {
	ate, faults, values := suiteFor(t, snn.Arch{8, 6, 4})
	plain := ate.MeasureCoverage(faults, values)
	res, err := ate.MeasureCoverageContext(context.Background(), faults, values)
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if res.Detected != plain.Detected || res.Total != plain.Total || len(res.Undetected) != len(plain.Undetected) {
		t.Fatalf("context variant diverged: %v vs %v", res, plain)
	}
}

func TestMeasureCoverageContextPreCancelled(t *testing.T) {
	ate, faults, values := suiteFor(t, snn.Arch{8, 6, 4})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := ate.MeasureCoverageContext(ctx, faults, values)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res.Total != len(faults) {
		t.Fatalf("Total = %d, want %d", res.Total, len(faults))
	}
	if got := res.Detected + len(res.Undetected) + len(res.Errors); got != 0 {
		t.Fatalf("pre-cancelled campaign evaluated %d faults, want 0", got)
	}
}

func TestMeasureSessionsContextPreCancelled(t *testing.T) {
	ate, _, _ := suiteFor(t, snn.Arch{8, 6, 4})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	stats, err := ate.MeasureSessionsContext(ctx, 50, nil, unreliable.Reliable(), variation.None(), RetestPolicy{}, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if stats.Chips != 0 {
		t.Fatalf("pre-cancelled campaign ran %d chips, want 0", stats.Chips)
	}
}

// TestMeasureSessionsContextMidCancel cancels from inside the campaign (the
// mods callback fires per claimed chip) and asserts the pool drains early:
// workers stop claiming chips, sessions in flight finish, and the partial
// stats count only evaluated chips.
func TestMeasureSessionsContextMidCancel(t *testing.T) {
	ate, _, _ := suiteFor(t, snn.Arch{8, 6, 4})
	const n = 5000
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var fired atomic.Int64
	mods := func(i int) *snn.Modifiers {
		if fired.Add(1) == 10 {
			cancel()
		}
		return nil
	}
	stats, err := ate.MeasureSessionsContext(ctx, n, mods, unreliable.Reliable(), variation.None(), RetestPolicy{}, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if stats.Chips == 0 || stats.Chips >= n {
		t.Fatalf("cancelled campaign ran %d of %d chips, want a strict partial run", stats.Chips, n)
	}
	if stats.Pass != stats.Chips {
		t.Fatalf("defect-free reliable chips must all pass: %+v", stats)
	}
}

func TestMeasureSessionsContextBackgroundMatchesPlain(t *testing.T) {
	ate, faults, _ := suiteFor(t, snn.Arch{8, 6, 4})
	values := fault.PaperValues(snn.DefaultParams().Theta)
	mods := func(i int) *snn.Modifiers { return faults[i%len(faults)].Modifiers(values) }
	plain := ate.MeasureSessions(40, mods, unreliable.Reliable(), variation.None(), RetestPolicy{}, 7)
	viaCtx, err := ate.MeasureSessionsContext(context.Background(), 40, mods, unreliable.Reliable(), variation.None(), RetestPolicy{}, 7)
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if !reflect.DeepEqual(plain, viaCtx) {
		t.Fatalf("context variant diverged:\n%+v\n%+v", viaCtx, plain)
	}
}

func TestCloneWithTolerance(t *testing.T) {
	ate, _, _ := suiteFor(t, snn.Arch{8, 6, 4})
	clone, err := ate.CloneWithTolerance(2)
	if err != nil {
		t.Fatal(err)
	}
	if clone.tolerance != 2 {
		t.Fatalf("clone tolerance = %d, want 2", clone.tolerance)
	}
	if ate.tolerance != 0 {
		t.Fatalf("CloneWithTolerance mutated the original (tolerance %d)", ate.tolerance)
	}
	if clone.ts != ate.ts || len(clone.golden) != len(ate.golden) {
		t.Fatal("clone must share the test set and golden responses")
	}
	if _, err := ate.CloneWithTolerance(-1); err == nil {
		t.Fatal("negative tolerance must be rejected")
	}
}
