package repair

import (
	"strings"
	"testing"

	"neurotest/internal/chip"
	"neurotest/internal/fault"
	"neurotest/internal/snn"
)

// testChip builds a programmed chip whose geometry the planner tests pin:
// arch 8-6-4 on 8x8 cores with 2 spare rows/columns reserved (stride 6),
// so boundary 0 splits into two row stripes and boundary 1 is one core.
func testChip(t *testing.T, weight float64) (*chip.Chip, *snn.Network) {
	t.Helper()
	arch := snn.Arch{8, 6, 4}
	params := snn.DefaultParams()
	net := snn.New(arch, params)
	for b := 0; b < arch.Boundaries(); b++ {
		for i := range net.W[b] {
			net.W[b][i] = weight
		}
	}
	c, err := chip.New(chip.Config{
		Arch: arch, Params: params,
		Core:       chip.CoreShape{Axons: 8, Neurons: 8},
		WeightBits: 8, SpareAxons: 2, SpareNeurons: 2,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Program(net); err != nil {
		t.Fatal(err)
	}
	return c, net
}

func TestPlanRemapColumnCuresNeuronFault(t *testing.T) {
	c, net := testChip(t, 0.9)
	pl := Planner{Chip: c, Net: net, Margin: 0.1}
	f := fault.NewNeuronFault(fault.NASF, snn.NeuronID{Layer: 1, Index: 2})
	plan, err := pl.Plan([]fault.Fault{f})
	if err != nil {
		t.Fatal(err)
	}
	// Column 2 of boundary 0 is covered by both row stripes: two actions.
	if len(plan.Actions) != 2 || plan.Columns() != 1 {
		t.Fatalf("plan = %v", plan)
	}
	for _, a := range plan.Actions {
		if a.Strategy != RemapColumn || a.Neuron != 2 {
			t.Errorf("unexpected action %v", a)
		}
	}
	if plan.CellsRetired() != 6+2 { // stripe heights 6 and 2
		t.Errorf("CellsRetired = %d", plan.CellsRetired())
	}
	if res := plan.Residual(f.Modifiers(fault.PaperValues(1))); res != nil {
		t.Errorf("residual after column remap = %+v", res)
	}
	if err := plan.Validate(c); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestPlanBypassesInsignificantCell(t *testing.T) {
	c, net := testChip(t, 0.9)
	// Make one cell insignificant; its stuck fault must be bypassed.
	id := snn.SynapseID{Boundary: 0, Pre: 1, Post: 3}
	net.SetEntry(0, 1, 3, 0.05)
	pl := Planner{Chip: c, Net: net, Margin: 0.1}
	f := fault.NewSynapseFault(fault.SWF, id)
	plan, err := pl.Plan([]fault.Fault{f})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Actions) != 1 || plan.Actions[0].Strategy != BypassCell {
		t.Fatalf("plan = %v", plan)
	}
	res := plan.Residual(f.Modifiers(fault.PaperValues(1)))
	if res == nil || res.StuckWeight[id] != 0 {
		t.Fatalf("bypass must leave the cell stuck at zero, got %+v", res)
	}
	if err := plan.Validate(c); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestPlanSwapsRowForSignificantCell(t *testing.T) {
	c, net := testChip(t, 0.9)
	pl := Planner{Chip: c, Net: net, Margin: 0.1}
	f := fault.NewSynapseFault(fault.SASF, snn.SynapseID{Boundary: 0, Pre: 1, Post: 3})
	plan, err := pl.Plan([]fault.Fault{f})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Actions) != 1 || plan.Actions[0].Strategy != SwapRow {
		t.Fatalf("plan = %v", plan)
	}
	// The swap cures every cell of the row inside the core's column span —
	// a second fault on the same row must not consume another spare.
	f2 := fault.NewSynapseFault(fault.SWF, snn.SynapseID{Boundary: 0, Pre: 1, Post: 5})
	plan, err = pl.Plan([]fault.Fault{f, f2})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Actions) != 1 || plan.Rows() != 1 {
		t.Fatalf("same-row faults must share one swap, plan = %v", plan)
	}
	mods := snn.MergeModifiers(f.Modifiers(fault.PaperValues(1)), f2.Modifiers(fault.PaperValues(1)))
	if res := plan.Residual(mods); res != nil {
		t.Errorf("residual after row swap = %+v", res)
	}
}

func TestPlanExhaustsSparesDeterministically(t *testing.T) {
	// 8x8 cores with zero reservation and arch 8-8-8: every core is fully
	// used, so significant synapse faults have no spare row and no spare
	// column to fall back to.
	arch := snn.Arch{8, 8, 8}
	params := snn.DefaultParams()
	net := snn.New(arch, params)
	for b := range net.W {
		for i := range net.W[b] {
			net.W[b][i] = 0.9
		}
	}
	c, err := chip.New(chip.Config{
		Arch: arch, Params: params,
		Core: chip.CoreShape{Axons: 8, Neurons: 8}, WeightBits: 8,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Program(net); err != nil {
		t.Fatal(err)
	}
	pl := Planner{Chip: c, Net: net, Margin: 0.1}
	f := fault.NewSynapseFault(fault.SASF, snn.SynapseID{Boundary: 1, Pre: 2, Post: 2})
	plan, err := pl.Plan([]fault.Fault{f})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Actions) != 0 || len(plan.Unrepairable) != 1 {
		t.Fatalf("expected unrepairable, plan = %v", plan)
	}
	if err := plan.Validate(c); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestPlanDeterministicUnderCandidateOrder(t *testing.T) {
	c, net := testChip(t, 0.9)
	pl := Planner{Chip: c, Net: net, Margin: 0.1}
	cands := []fault.Fault{
		fault.NewSynapseFault(fault.SASF, snn.SynapseID{Boundary: 0, Pre: 7, Post: 1}),
		fault.NewNeuronFault(fault.NASF, snn.NeuronID{Layer: 2, Index: 3}),
		fault.NewSynapseFault(fault.SWF, snn.SynapseID{Boundary: 1, Pre: 0, Post: 0}),
		fault.NewNeuronFault(fault.HSF, snn.NeuronID{Layer: 1, Index: 4}),
	}
	base, err := pl.Plan(cands)
	if err != nil {
		t.Fatal(err)
	}
	// Reversed, duplicated — the plan rendering must be byte-identical.
	rev := make([]fault.Fault, 0, 2*len(cands))
	for i := len(cands) - 1; i >= 0; i-- {
		rev = append(rev, cands[i], cands[i])
	}
	again, err := pl.Plan(rev)
	if err != nil {
		t.Fatal(err)
	}
	if base.String() != again.String() {
		t.Fatalf("plan depends on candidate order:\n%s\nvs\n%s", base, again)
	}
	if !strings.Contains(base.String(), "remap-column") {
		t.Errorf("expected a column remap in %s", base)
	}
}

func TestPlanRejectsOutOfArchCandidates(t *testing.T) {
	c, net := testChip(t, 0.9)
	pl := Planner{Chip: c, Net: net, Margin: 0.1}
	bad := []fault.Fault{
		{Kind: fault.NASF, Neuron: snn.NeuronID{Layer: 9, Index: 0}},
		{Kind: fault.SWF, Synapse: snn.SynapseID{Boundary: 0, Pre: 99, Post: 0}},
	}
	for _, f := range bad {
		if _, err := pl.Plan([]fault.Fault{f}); err == nil {
			t.Errorf("candidate %v outside arch must error", f)
		}
	}
}

func TestValidateCatchesForgedActions(t *testing.T) {
	c, _ := testChip(t, 0.9)
	forged := []Plan{
		{Actions: []Action{{Strategy: RemapColumn, Core: 99, Neuron: 0}}},
		{Actions: []Action{{Strategy: BypassCell, Core: 0, Axon: -1, Neuron: 0}}},
		{Actions: []Action{{Strategy: SwapRow, Core: 0, Axon: 7, Spare: 0},
			{Strategy: SwapRow, Core: 0, Axon: 6, Spare: 1},
			{Strategy: SwapRow, Core: 0, Axon: 5, Spare: 2}}}, // 3 swaps > 2 spares
	}
	for i := range forged {
		if err := forged[i].Validate(c); err == nil {
			t.Errorf("forged plan %d validated", i)
		}
	}
}
