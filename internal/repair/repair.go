// Package repair closes the test loop: from a diagnosed candidate fault
// set (internal/diagnose) it computes a deterministic remapping/bypass plan
// over the chip's crossbar cells, reprograms the effective configuration,
// retests (internal/tester) and reports whether the die was rescued.
//
// The strategies are the in-field repair moves of the SNN reliability
// literature (RescueSNN, ReSpawn — see PAPERS.md), adapted to this
// repository's behavioural fault models:
//
//   - RemapColumn moves a faulty neuron column onto a spare column of every
//     core tile covering it (RescueSNN-style fault-aware mapping). The
//     faulty neuron circuit and its whole afferent column are retired.
//   - BypassCell zeroes one stuck synapse cell whose configured weight
//     magnitude is at or below a margin threshold (ReSpawn-style
//     significance-aware dropping): an insignificant cell is cheaper to
//     disconnect than to remap.
//   - SwapRow moves a faulty axon row onto a spare row of its core —
//     repairing every cell the row carries at the cost of one spare line.
//
// Because the five fault models are behavioural (snn.Modifiers injected at
// simulation time, never chip state), a repair is modelled as the residual
// modifier set: actions "cure" the modifier entries whose physical site was
// remapped away, and a bypassed cell contributes a StuckWeight-0 entry (a
// disconnected cell). The residual is what the retest and the post-repair
// application accuracy run against.
//
// Determinism: plans are a pure function of (sorted candidate list, chip
// geometry, configured weights, margin). Candidates are iterated in
// diagnose.SortFaults order, spare lines are consumed in increasing
// ordinal, and every tie-break derives from fault-site content — so equal
// diagnoses on equal chips yield byte-identical plans, which the neurolint
// determinism analyzer enforces for this package.
package repair

import (
	"fmt"
	"math"
	"strings"

	"neurotest/internal/chip"
	"neurotest/internal/diagnose"
	"neurotest/internal/fault"
	"neurotest/internal/snn"
)

// Strategy identifies one kind of repair move.
type Strategy int

const (
	// RemapColumn retires a faulty neuron column onto spare columns.
	RemapColumn Strategy = iota
	// SwapRow retires a faulty axon row onto a spare row of its core.
	SwapRow
	// BypassCell disconnects one insignificant stuck cell.
	BypassCell
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case RemapColumn:
		return "remap-column"
	case SwapRow:
		return "swap-row"
	case BypassCell:
		return "bypass-cell"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Action is one deterministic move of a repair plan.
type Action struct {
	Strategy Strategy
	// Fault is the diagnosed candidate the action neutralises (the
	// content-derived tie-break that keeps plan renderings reproducible).
	Fault fault.Fault
	// Core is the chip core index holding the retired resource.
	Core int
	// Axon is the core-local row (SwapRow, BypassCell).
	Axon int
	// Neuron is the core-local column (RemapColumn, BypassCell).
	Neuron int
	// Spare is the ordinal of the spare line consumed within the core
	// (RemapColumn, SwapRow); -1 for BypassCell, which consumes none.
	Spare int
	// Cells counts the crossbar cells the action retires or rewires.
	Cells int
}

// String renders the action deterministically.
func (a Action) String() string {
	switch a.Strategy {
	case RemapColumn:
		return fmt.Sprintf("%s core=%d col=%d spare=%d cells=%d (%v)",
			a.Strategy, a.Core, a.Neuron, a.Spare, a.Cells, a.Fault)
	case SwapRow:
		return fmt.Sprintf("%s core=%d row=%d spare=%d cells=%d (%v)",
			a.Strategy, a.Core, a.Axon, a.Spare, a.Cells, a.Fault)
	default:
		return fmt.Sprintf("%s core=%d cell=(%d,%d) (%v)",
			a.Strategy, a.Core, a.Axon, a.Neuron, a.Fault)
	}
}

// colKey addresses one global neuron column of a boundary.
type colKey struct{ boundary, col int }

// rowSpan records a swapped axon row and the column range its core covers:
// synapse sites (boundary, pre, post) with post inside [lo, hi) are cured.
type rowSpan struct {
	boundary, pre int
	lo, hi        int
}

// Plan is a deterministic set of repair actions plus the candidates no
// strategy could neutralise.
type Plan struct {
	// Actions lists the moves in the order the planner emitted them
	// (candidate SortFaults order; within a column remap, core index order).
	Actions []Action
	// Unrepairable lists diagnosed candidates the spare budget and margin
	// could not cover, in SortFaults order.
	Unrepairable []fault.Fault

	remappedCols map[colKey]bool
	swappedRows  []rowSpan
	bypassed     map[snn.SynapseID]bool
}

// Columns returns the number of distinct neuron columns remapped.
func (p *Plan) Columns() int { return len(p.remappedCols) }

// Rows returns the number of axon rows swapped to spares.
func (p *Plan) Rows() int { return len(p.swappedRows) }

// Bypassed returns the number of individual cells disconnected.
func (p *Plan) Bypassed() int { return len(p.bypassed) }

// CellsRetired sums the crossbar cells all actions retire or rewire.
func (p *Plan) CellsRetired() int {
	n := 0
	for _, a := range p.Actions {
		n += a.Cells
	}
	return n
}

// Empty reports whether the plan performs no action.
func (p *Plan) Empty() bool { return p == nil || len(p.Actions) == 0 }

// curesNeuron reports whether the plan retires the neuron's column.
func (p *Plan) curesNeuron(id snn.NeuronID) bool {
	if id.Layer < 1 {
		return false
	}
	return p.remappedCols[colKey{boundary: id.Layer - 1, col: id.Index}]
}

// curesSynapse reports whether the plan rewires the synapse's cell.
func (p *Plan) curesSynapse(id snn.SynapseID) bool {
	if p.remappedCols[colKey{boundary: id.Boundary, col: id.Post}] {
		return true
	}
	for _, r := range p.swappedRows {
		if r.boundary == id.Boundary && r.pre == id.Pre && id.Post >= r.lo && id.Post < r.hi {
			return true
		}
	}
	return p.bypassed[id]
}

// Uncured filters the die's defect modifiers down to the entries no plan
// action covers — the *unknown* defect remaining after repair. This is what
// the structural retest runs against: remapped and bypassed sites are
// retired resources on the die's known-bad map, so the retest masks them
// the way memory test masks mapped-out rows; any surviving entry here is a
// defect the repair failed to neutralise and must fail the retest. The
// input is not mutated; nil means every defect site was covered.
func (p *Plan) Uncured(defect *snn.Modifiers) *snn.Modifiers {
	out := p.filterCured(defect)
	if out.Empty() {
		return nil
	}
	return out
}

// Residual maps the die's defect modifiers through the plan into the die's
// true post-repair behaviour: entries whose physical site the plan remapped
// away disappear, and every bypassed cell contributes a stuck-at-zero
// weight (the disconnected cell). Application-accuracy evaluation runs
// against this — unlike the masked retest (Uncured), the application pays
// for every disconnected cell. The input is not mutated; nil is returned
// when nothing remains (a fully cured die with no bypasses).
func (p *Plan) Residual(defect *snn.Modifiers) *snn.Modifiers {
	out := p.filterCured(defect)
	// A bypassed cell is disconnected: its effective weight is stuck at 0
	// whatever the configuration asks for. Actions are a slice, so the
	// iteration order is the planner's deterministic emission order.
	for _, a := range p.Actions {
		if a.Strategy != BypassCell {
			continue
		}
		if out.StuckWeight == nil {
			out.StuckWeight = make(map[snn.SynapseID]float64)
		}
		out.StuckWeight[a.Fault.Synapse] = 0
	}
	if out.Empty() {
		return nil
	}
	return out
}

// filterCured drops defect entries whose physical site the plan retired.
func (p *Plan) filterCured(defect *snn.Modifiers) *snn.Modifiers {
	out := &snn.Modifiers{}
	if defect != nil {
		// Keyed map-to-map filters: membership depends only on each entry's
		// own site, so the randomized iteration order cannot change the
		// filtered result.
		//lint:ignore determinism keyed filter; kept entries depend only on their own site
		for id, v := range defect.ThresholdOverride {
			if p.curesNeuron(id) {
				continue
			}
			if out.ThresholdOverride == nil {
				out.ThresholdOverride = make(map[snn.NeuronID]float64)
			}
			out.ThresholdOverride[id] = v
		}
		//lint:ignore determinism keyed filter; kept entries depend only on their own site
		for id, v := range defect.ForceSpike {
			if p.curesNeuron(id) {
				continue
			}
			if out.ForceSpike == nil {
				out.ForceSpike = make(map[snn.NeuronID]bool)
			}
			out.ForceSpike[id] = v
		}
		//lint:ignore determinism keyed filter; kept entries depend only on their own site
		for id, v := range defect.StuckWeight {
			if p.curesSynapse(id) {
				continue
			}
			if out.StuckWeight == nil {
				out.StuckWeight = make(map[snn.SynapseID]float64)
			}
			out.StuckWeight[id] = v
		}
		//lint:ignore determinism keyed filter; kept entries depend only on their own site
		for id, v := range defect.AlwaysOnSynapse {
			if p.curesSynapse(id) {
				continue
			}
			if out.AlwaysOnSynapse == nil {
				out.AlwaysOnSynapse = make(map[snn.SynapseID]bool)
			}
			out.AlwaysOnSynapse[id] = v
		}
	}
	return out
}

// String renders the plan deterministically: a summary line followed by one
// line per action and per unrepairable candidate.
func (p *Plan) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "plan: %d actions (%d columns remapped, %d rows swapped, %d cells bypassed), %d cells retired, %d unrepairable",
		len(p.Actions), p.Columns(), p.Rows(), p.Bypassed(), p.CellsRetired(), len(p.Unrepairable))
	for _, a := range p.Actions {
		sb.WriteString("\n  ")
		sb.WriteString(a.String())
	}
	for _, f := range p.Unrepairable {
		fmt.Fprintf(&sb, "\n  unrepairable %v", f)
	}
	return sb.String()
}

// Planner computes repair plans over one chip geometry and the application
// configuration programmed into it.
type Planner struct {
	// Chip supplies the crossbar geometry and per-core spare budgets.
	Chip *chip.Chip
	// Net is the application configuration whose weights judge cell
	// significance for BypassCell (ReSpawn-style dropping); nil disables
	// the bypass strategy entirely.
	Net *snn.Network
	// Margin is the |weight| threshold at or below which a stuck cell is
	// bypassed instead of remapped. Only meaningful with a non-nil Net.
	Margin float64
}

// Plan computes the deterministic repair plan for a diagnosed candidate
// set. Candidates are processed in diagnose.SortFaults order; duplicates
// and candidates already cured by earlier actions are skipped. A candidate
// whose site falls outside the chip's architecture is an error (the
// dictionary and chip must describe the same device).
func (pl Planner) Plan(candidates []fault.Fault) (*Plan, error) {
	if pl.Chip == nil {
		return nil, fmt.Errorf("repair: planner has no chip")
	}
	arch := pl.Chip.Config().Arch
	sorted := make([]fault.Fault, len(candidates))
	copy(sorted, candidates)
	diagnose.SortFaults(sorted)

	p := &Plan{
		remappedCols: make(map[colKey]bool),
		bypassed:     make(map[snn.SynapseID]bool),
	}
	// Per-core spare budgets, consumed in increasing ordinal.
	nCores := pl.Chip.NumCores()
	spareRows := make([]int, nCores)
	spareCols := make([]int, nCores)
	usedRows := make([]int, nCores)
	usedCols := make([]int, nCores)
	for i := 0; i < nCores; i++ {
		spareRows[i] = pl.Chip.Core(i).SpareAxons
		spareCols[i] = pl.Chip.Core(i).SpareNeurons
	}

	var prev *fault.Fault
	for i := range sorted {
		f := sorted[i]
		if prev != nil && *prev == f {
			continue
		}
		prev = &sorted[i]
		if f.Kind.IsNeuronFault() {
			if f.Neuron.Layer < 1 || f.Neuron.Layer >= arch.Layers() ||
				f.Neuron.Index < 0 || f.Neuron.Index >= arch[f.Neuron.Layer] {
				return nil, fmt.Errorf("repair: candidate %v outside architecture %v", f, arch)
			}
			if p.curesNeuron(f.Neuron) {
				continue
			}
			if !pl.remapColumn(p, f, f.Neuron.Layer-1, f.Neuron.Index, spareCols, usedCols) {
				p.Unrepairable = append(p.Unrepairable, f)
			}
			continue
		}
		s := f.Synapse
		if s.Boundary < 0 || s.Boundary >= arch.Boundaries() ||
			s.Pre < 0 || s.Pre >= arch[s.Boundary] ||
			s.Post < 0 || s.Post >= arch[s.Boundary+1] {
			return nil, fmt.Errorf("repair: candidate %v outside architecture %v", f, arch)
		}
		if p.curesSynapse(s) {
			continue
		}
		ci, co := pl.coveringCore(s)
		if co == nil {
			return nil, fmt.Errorf("repair: no core covers %v on chip %v", f, arch)
		}
		if pl.insignificant(s) {
			p.Actions = append(p.Actions, Action{
				Strategy: BypassCell, Fault: f, Core: ci,
				Axon: s.Pre - co.AxonOff, Neuron: s.Post - co.NeuronOff,
				Spare: -1, Cells: 1,
			})
			p.bypassed[s] = true
			continue
		}
		if spareRows[ci] > 0 {
			spareRows[ci]--
			p.Actions = append(p.Actions, Action{
				Strategy: SwapRow, Fault: f, Core: ci,
				Axon: s.Pre - co.AxonOff, Neuron: -1,
				Spare: usedRows[ci], Cells: co.Neurons,
			})
			usedRows[ci]++
			p.swappedRows = append(p.swappedRows, rowSpan{
				boundary: s.Boundary, pre: s.Pre,
				lo: co.NeuronOff, hi: co.NeuronOff + co.Neurons,
			})
			continue
		}
		// No spare row: fall back to retiring the whole column.
		if !pl.remapColumn(p, f, s.Boundary, s.Post, spareCols, usedCols) {
			p.Unrepairable = append(p.Unrepairable, f)
		}
	}
	return p, nil
}

// remapColumn retires global column col of boundary b onto spare columns.
// Every core tile covering the column (one per row stripe) must hold a
// spare, because the remapped column needs its full afferent fan-in; the
// plan gets one action per covering core. Returns false when any covering
// core's spare-column budget is exhausted (nothing is consumed then).
func (pl Planner) remapColumn(p *Plan, f fault.Fault, b, col int, spareCols, usedCols []int) bool {
	var covering []int
	for i := 0; i < pl.Chip.NumCores(); i++ {
		co := pl.Chip.Core(i)
		if co.Boundary == b && col >= co.NeuronOff && col < co.NeuronOff+co.Neurons {
			covering = append(covering, i)
		}
	}
	if len(covering) == 0 {
		return false
	}
	for _, i := range covering {
		if spareCols[i] < 1 {
			return false
		}
	}
	for _, i := range covering {
		co := pl.Chip.Core(i)
		spareCols[i]--
		p.Actions = append(p.Actions, Action{
			Strategy: RemapColumn, Fault: f, Core: i,
			Axon: -1, Neuron: col - co.NeuronOff,
			Spare: usedCols[i], Cells: co.Axons,
		})
		usedCols[i]++
	}
	p.remappedCols[colKey{boundary: b, col: col}] = true
	return true
}

// coveringCore finds the unique core tile holding a synapse cell.
func (pl Planner) coveringCore(s snn.SynapseID) (int, *chip.Core) {
	for i := 0; i < pl.Chip.NumCores(); i++ {
		co := pl.Chip.Core(i)
		if co.Boundary == s.Boundary &&
			s.Pre >= co.AxonOff && s.Pre < co.AxonOff+co.Axons &&
			s.Post >= co.NeuronOff && s.Post < co.NeuronOff+co.Neurons {
			return i, co
		}
	}
	return -1, nil
}

// insignificant reports whether the configured weight magnitude of cell s
// is within the bypass margin (ReSpawn's significance test).
func (pl Planner) insignificant(s snn.SynapseID) bool {
	if pl.Net == nil {
		return false
	}
	nOut := pl.Net.Arch[s.Boundary+1]
	return math.Abs(pl.Net.W[s.Boundary][s.Pre*nOut+s.Post]) <= pl.Margin
}

// Validate checks the plan against a chip: every action must address an
// existing core, stay inside the core's used geometry, and the per-core
// spare consumption must fit the core's budget. A fuzzing invariant: any
// plan the planner emits for any diagnosis validates against its chip.
func (p *Plan) Validate(c *chip.Chip) error {
	if p == nil {
		return fmt.Errorf("repair: nil plan")
	}
	rows := make([]int, c.NumCores())
	cols := make([]int, c.NumCores())
	for i, a := range p.Actions {
		if a.Core < 0 || a.Core >= c.NumCores() {
			return fmt.Errorf("repair: action %d core %d outside [0,%d)", i, a.Core, c.NumCores())
		}
		co := c.Core(a.Core)
		switch a.Strategy {
		case RemapColumn:
			if a.Neuron < 0 || a.Neuron >= co.Neurons {
				return fmt.Errorf("repair: action %d column %d outside core width %d", i, a.Neuron, co.Neurons)
			}
			cols[a.Core]++
		case SwapRow:
			if a.Axon < 0 || a.Axon >= co.Axons {
				return fmt.Errorf("repair: action %d row %d outside core height %d", i, a.Axon, co.Axons)
			}
			rows[a.Core]++
		case BypassCell:
			if a.Axon < 0 || a.Axon >= co.Axons || a.Neuron < 0 || a.Neuron >= co.Neurons {
				return fmt.Errorf("repair: action %d cell (%d,%d) outside %dx%d core", i, a.Axon, a.Neuron, co.Axons, co.Neurons)
			}
		default:
			return fmt.Errorf("repair: action %d has unknown strategy %v", i, a.Strategy)
		}
	}
	for i := 0; i < c.NumCores(); i++ {
		co := c.Core(i)
		if rows[i] > co.SpareAxons {
			return fmt.Errorf("repair: core %d consumes %d spare rows of %d", i, rows[i], co.SpareAxons)
		}
		if cols[i] > co.SpareNeurons {
			return fmt.Errorf("repair: core %d consumes %d spare columns of %d", i, cols[i], co.SpareNeurons)
		}
	}
	return nil
}
