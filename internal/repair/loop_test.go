package repair

import (
	"context"
	"sync"
	"testing"

	"neurotest/internal/chip"
	"neurotest/internal/core"
	"neurotest/internal/fault"
	"neurotest/internal/pattern"
	"neurotest/internal/snn"
)

// buildSuite generates the merged proposed suite for an architecture.
func buildSuite(t *testing.T, arch snn.Arch) (*core.Generator, *pattern.TestSet) {
	t.Helper()
	params := snn.DefaultParams()
	g, err := core.NewGenerator(core.Options{
		Arch:   arch,
		Params: params,
		Values: fault.PaperValues(params.Theta),
	})
	if err != nil {
		t.Fatal(err)
	}
	_, merged := g.GenerateAll()
	return g, merged
}

func fullUniverse(arch snn.Arch) []fault.Fault {
	var out []fault.Fault
	for _, k := range fault.Kinds() {
		out = append(out, fault.Universe(arch, k)...)
	}
	return out
}

// testLoop builds a loop over arch 10-8-3 with a generous spare budget
// (one 16x16 core per boundary; the workload trains well at this size).
func testLoop(t *testing.T) *Loop {
	t.Helper()
	arch := snn.Arch{10, 8, 3}
	g, merged := buildSuite(t, arch)
	l, err := New(Config{
		TS:       merged,
		Values:   g.Options().Values,
		Universe: fullUniverse(arch),
		Core:     chip.CoreShape{Axons: 16, Neurons: 16},
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestLoopHealthyDie(t *testing.T) {
	l := testLoop(t)
	var events []PhaseEvent
	rep, plan, err := l.Run(context.Background(), nil, func(ev PhaseEvent) { events = append(events, ev) })
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Healthy || plan != nil {
		t.Fatalf("defect-free die: %s (plan %v)", rep, plan)
	}
	if len(events) != 1 || events[0].Phase != "test" {
		t.Fatalf("healthy die must stop after the test phase, got %+v", events)
	}
	if rep.PreAccuracy != rep.GoldenAccuracy {
		t.Errorf("healthy accuracy %v != golden %v", rep.PreAccuracy, rep.GoldenAccuracy)
	}
}

func TestClosedLoopRepairsInjectedCluster(t *testing.T) {
	l := testLoop(t)
	values := fault.PaperValues(snn.DefaultParams().Theta)
	// A two-fault cluster: an always-spiking hidden neuron plus a stuck
	// synapse on the output boundary.
	f1 := fault.NewNeuronFault(fault.NASF, snn.NeuronID{Layer: 1, Index: 2})
	f2 := fault.NewSynapseFault(fault.SWF, snn.SynapseID{Boundary: 1, Pre: 4, Post: 1})
	defect := snn.MergeModifiers(f1.Modifiers(values), f2.Modifiers(values))

	var phases []string
	rep, plan, err := l.Run(context.Background(), defect, func(ev PhaseEvent) { phases = append(phases, ev.Phase) })
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"test", "diagnose", "plan", "reprogram", "retest"}
	if len(phases) != len(want) {
		t.Fatalf("phases = %v", phases)
	}
	for i := range want {
		if phases[i] != want[i] {
			t.Fatalf("phases = %v, want %v", phases, want)
		}
	}
	if rep.PreFails == 0 || rep.Candidates == 0 {
		t.Fatalf("cluster went undetected: %s", rep)
	}
	if rep.Verdict != Repaired {
		t.Fatalf("verdict = %s (plan %v)", rep, plan)
	}
	if rep.PostFails != 0 {
		t.Errorf("repaired die still fails %d items", rep.PostFails)
	}
	if rep.PostAccuracy < rep.GoldenAccuracy-DefaultAccuracyBudget {
		t.Errorf("post accuracy %.4f below golden %.4f - %.2f", rep.PostAccuracy, rep.GoldenAccuracy, DefaultAccuracyBudget)
	}
	if plan.Empty() {
		t.Errorf("repair without actions")
	}
	if err := plan.Validate(l.Chip()); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestLoopUnrepairableWithoutSpares(t *testing.T) {
	arch := snn.Arch{8, 8, 8}
	g, merged := buildSuite(t, arch)
	l, err := New(Config{
		TS:       merged,
		Values:   g.Options().Values,
		Universe: fullUniverse(arch),
		Core:     chip.CoreShape{Axons: 8, Neurons: 8}, // fully used, zero spares
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	f := fault.NewNeuronFault(fault.NASF, snn.NeuronID{Layer: 1, Index: 0})
	rep, plan, err := l.Run(context.Background(), f.Modifiers(g.Options().Values), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Unrepairable {
		t.Fatalf("no-spare chip produced %s (plan %v)", rep, plan)
	}
	if rep.UnrepairableFaults == 0 {
		t.Errorf("report hides the uncovered candidates: %s", rep)
	}
}

// TestLoopDeterministicUnderConcurrency pins the acceptance bar: the same
// diagnosis on the same chip yields byte-identical reports and plans across
// runs and across goroutines (exercised under -race by make race).
func TestLoopDeterministicUnderConcurrency(t *testing.T) {
	l := testLoop(t)
	values := fault.PaperValues(snn.DefaultParams().Theta)
	f1 := fault.NewNeuronFault(fault.ESF, snn.NeuronID{Layer: 1, Index: 1})
	f2 := fault.NewSynapseFault(fault.SASF, snn.SynapseID{Boundary: 0, Pre: 3, Post: 4})
	defect := snn.MergeModifiers(f1.Modifiers(values), f2.Modifiers(values))

	const runs = 6
	reports := make([]string, runs)
	plans := make([]string, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rep, plan, err := l.Run(context.Background(), defect, nil)
			if err != nil {
				t.Errorf("run %d: %v", i, err)
				return
			}
			reports[i] = rep.String()
			plans[i] = plan.String()
		}(i)
	}
	wg.Wait()
	for i := 1; i < runs; i++ {
		if reports[i] != reports[0] {
			t.Errorf("report %d differs:\n%s\nvs\n%s", i, reports[i], reports[0])
		}
		if plans[i] != plans[0] {
			t.Errorf("plan %d differs:\n%s\nvs\n%s", i, plans[i], plans[0])
		}
	}
}

func TestLoopCancelledContext(t *testing.T) {
	l := testLoop(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := l.Run(ctx, nil, nil); err == nil {
		t.Fatal("cancelled context must abort the loop")
	}
}
