package repair

import (
	"sync"
	"testing"

	"neurotest/internal/chip"
	"neurotest/internal/core"
	"neurotest/internal/diagnose"
	"neurotest/internal/fault"
	"neurotest/internal/snn"
)

// fuzzSubstrate is the shared dictionary/planner pair FuzzRepairPlan probes:
// built once (suite generation is the expensive part) and read-only after.
var (
	fuzzOnce sync.Once
	fuzzDict *diagnose.Dictionary
	fuzzPl   Planner
	fuzzN    int
)

func fuzzSetup(f *testing.F) {
	f.Helper()
	fuzzOnce.Do(func() {
		arch := snn.Arch{8, 6, 4}
		params := snn.DefaultParams()
		g, err := core.NewGenerator(core.Options{
			Arch: arch, Params: params, Values: fault.PaperValues(params.Theta),
		})
		if err != nil {
			f.Fatal(err)
		}
		_, merged := g.GenerateAll()
		var universe []fault.Fault
		for _, k := range fault.Kinds() {
			universe = append(universe, fault.Universe(arch, k)...)
		}
		fuzzDict = diagnose.Build(merged, g.Options().Values, nil, universe)
		fuzzN = len(merged.Items)

		net := snn.New(arch, params)
		for b := range net.W {
			for i := range net.W[b] {
				net.W[b][i] = 0.3 * float64((b+i)%5)
			}
		}
		c, err := chip.New(chip.Config{
			Arch: arch, Params: params,
			Core:       chip.CoreShape{Axons: 8, Neurons: 8},
			WeightBits: 8, SpareAxons: 1, SpareNeurons: 1,
		}, 1)
		if err != nil {
			f.Fatal(err)
		}
		if err := c.Program(net); err != nil {
			f.Fatal(err)
		}
		fuzzPl = Planner{Chip: c, Net: net, Margin: 0.25}
	})
}

// FuzzRepairPlan feeds arbitrary observed-signature bytes through diagnosis
// and planning: whatever a flaky tester hands the loop, the planner must
// never panic and every emitted plan must validate against its chip.
func FuzzRepairPlan(f *testing.F) {
	fuzzSetup(f)
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{0x01, 0x80, 0x55, 0xaa})
	f.Fuzz(func(t *testing.T, data []byte) {
		sig := diagnose.SignatureFromBytes(data, fuzzN)
		cands := fuzzDict.Candidates(sig)
		plan, err := fuzzPl.Plan(cands)
		if err != nil {
			t.Fatalf("dictionary candidates must always plan: %v", err)
		}
		if err := plan.Validate(fuzzPl.Chip); err != nil {
			t.Fatalf("emitted plan fails validation: %v\n%s", err, plan)
		}
		if plan.CellsRetired() < 0 || plan.Columns() < 0 {
			t.Fatalf("negative plan summary: %s", plan)
		}
		if res := plan.Residual(nil); res != nil && len(res.StuckWeight) != plan.Bypassed() {
			t.Fatalf("bypass zeros %d != bypassed cells %d", len(res.StuckWeight), plan.Bypassed())
		}
	})
}
