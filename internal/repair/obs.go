package repair

import (
	"sync"

	"neurotest/internal/obs"
)

// Package-level instruments, registered once in the process-wide obs
// default registry — the same lazy pattern as internal/online: callers who
// never scrape pay one sync.Once check per repair session.
var (
	obsOnce sync.Once

	repairSeconds *obs.Histogram // one closed-loop session's wall time

	plansTotal      *obs.Counter
	cellsByStrategy map[Strategy]*obs.Counter
	verdictCounters map[Verdict]*obs.Counter

	recoveredYield *obs.Gauge
)

// ensureObs registers the package instruments on first use.
func ensureObs() {
	obsOnce.Do(func() {
		r := obs.Default()
		repairSeconds = r.Histogram("repair_seconds",
			"wall time of one test-diagnose-plan-reprogram-retest session", nil)
		plansTotal = r.Counter("repair_plans_total",
			"repair plans computed for failing dies")
		cells := func(s Strategy) *obs.Counter {
			return r.Counter("repair_cells_retired_total",
				"crossbar cells retired or rewired by applied plans",
				obs.L("strategy", s.String()))
		}
		cellsByStrategy = map[Strategy]*obs.Counter{
			RemapColumn: cells(RemapColumn), SwapRow: cells(SwapRow),
			BypassCell: cells(BypassCell),
		}
		verdict := func(v Verdict) *obs.Counter {
			return r.Counter("repair_sessions_total",
				"repair sessions by terminal verdict", obs.L("verdict", v.String()))
		}
		verdictCounters = map[Verdict]*obs.Counter{
			Healthy: verdict(Healthy), Repaired: verdict(Repaired),
			Degraded: verdict(Degraded), Unrepairable: verdict(Unrepairable),
		}
		recoveredYield = r.Gauge("repair_recovered_yield",
			"fraction of the last repaired population shipping after repair")
	})
}

// startRepairTimer wraps obs.StartTimer behind ensureObs so Run has one
// call site for both registration and timing.
func startRepairTimer() obs.Timer { return obs.StartTimer() }

// observeRepair records one finished session. plan is nil for Healthy dies.
func observeRepair(t obs.Timer, rep *Report, plan *Plan) {
	t.ObserveElapsed(repairSeconds)
	verdictCounters[rep.Verdict].Inc()
	if plan == nil {
		return
	}
	plansTotal.Inc()
	for _, a := range plan.Actions {
		cellsByStrategy[a.Strategy].Add(int64(a.Cells))
	}
}

// SetRecoveredYield publishes the recovered-yield gauge: the fraction of a
// just-repaired population that ships (Healthy + Repaired dies).
func SetRecoveredYield(frac float64) {
	ensureObs()
	recoveredYield.Set(frac)
}
