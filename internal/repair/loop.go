package repair

import (
	"context"
	"fmt"
	"sync"

	"neurotest/internal/apptest"
	"neurotest/internal/chip"
	"neurotest/internal/diagnose"
	"neurotest/internal/fault"
	"neurotest/internal/faultsim"
	"neurotest/internal/margin"
	"neurotest/internal/pattern"
	"neurotest/internal/snn"
	"neurotest/internal/tester"
	"neurotest/internal/variation"
)

// Verdict is the terminal outcome of one repair session.
type Verdict int

const (
	// Healthy: the die failed no test item; no repair was attempted.
	Healthy Verdict = iota
	// Repaired: the remapped die passes the full structural retest and its
	// application accuracy is within budget of the fault-free golden.
	Repaired
	// Degraded: the plan cured something and accuracy is within budget,
	// but the structural retest still fails (residual modelled defect).
	Degraded
	// Unrepairable: the spare budget or margin could not rescue the die.
	Unrepairable
)

// String names the verdict the way test floors stamp dies.
func (v Verdict) String() string {
	switch v {
	case Healthy:
		return "HEALTHY"
	case Repaired:
		return "REPAIRED"
	case Degraded:
		return "DEGRADED"
	case Unrepairable:
		return "UNREPAIRABLE"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// PhaseEvent is one step of the closed loop, published as it completes.
type PhaseEvent struct {
	// Phase is "test", "diagnose", "plan", "reprogram" or "retest".
	Phase string `json:"phase"`
	// Detail is a deterministic one-line summary of the phase outcome.
	Detail string `json:"detail"`
}

// Report is the outcome of one repair session.
type Report struct {
	// PreFails counts failing test items before repair.
	PreFails int `json:"pre_fails"`
	// Candidates counts the diagnosed candidate faults.
	Candidates int `json:"candidates"`
	// ColumnsRemapped / RowsSwapped / CellsBypassed summarise the plan.
	ColumnsRemapped int `json:"columns_remapped"`
	RowsSwapped     int `json:"rows_swapped"`
	CellsBypassed   int `json:"cells_bypassed"`
	// CellsRetired counts crossbar cells the plan retires or rewires.
	CellsRetired int `json:"cells_retired"`
	// UnrepairableFaults counts candidates no strategy could cover.
	UnrepairableFaults int `json:"unrepairable_faults"`
	// PostFails counts failing test items after repair (0 when the retest
	// passes outright).
	PostFails int `json:"post_fails"`
	// RetestItems counts the items the early-exit production retest ran.
	RetestItems int `json:"retest_items"`
	// GoldenAccuracy / PreAccuracy / PostAccuracy are application-test
	// accuracies of the fault-free, faulty and repaired die.
	GoldenAccuracy float64 `json:"golden_accuracy"`
	PreAccuracy    float64 `json:"pre_accuracy"`
	PostAccuracy   float64 `json:"post_accuracy"`
	// Verdict is the terminal outcome.
	Verdict Verdict `json:"verdict"`
}

// String renders the report as one deterministic line.
func (r *Report) String() string {
	return fmt.Sprintf("%s: pre-fails=%d candidates=%d cols=%d rows=%d bypassed=%d retired=%d unrepairable=%d post-fails=%d acc golden=%.4f pre=%.4f post=%.4f",
		r.Verdict, r.PreFails, r.Candidates, r.ColumnsRemapped, r.RowsSwapped,
		r.CellsBypassed, r.CellsRetired, r.UnrepairableFaults, r.PostFails,
		r.GoldenAccuracy, r.PreAccuracy, r.PostAccuracy)
}

// Options tunes the repair policy.
type Options struct {
	// Margin is the |weight| threshold at or below which a stuck cell is
	// bypassed rather than remapped (ReSpawn's significance margin).
	// Zero selects DefaultMarginFraction of θ.
	Margin float64
	// Tolerance is the retest ATE's pass band in spike counts (0 = exact).
	Tolerance int
	// AccuracyBudget is the application-accuracy loss a repaired die may
	// show versus the fault-free golden. Zero selects DefaultAccuracyBudget.
	AccuracyBudget float64
}

// DefaultMarginFraction of θ is the default bypass margin: a cell whose
// configured weight is this insignificant cannot move the application's
// argmax by more than a fraction of one threshold per timestep.
const DefaultMarginFraction = 0.25

// DefaultAccuracyBudget is the post-repair accuracy loss the verdict
// tolerates (the "within 2% of golden" acceptance bar).
const DefaultAccuracyBudget = 0.02

// Config describes one repair substrate: the structural test program, the
// modelled fault universe, the chip geometry with its spare provisioning,
// and the application workload that judges post-repair quality.
type Config struct {
	// TS is the structural test set (diagnosis domain and retest program).
	TS *pattern.TestSet
	// Transform matches how chips under test are programmed (quantization);
	// nil tests against ideal configurations.
	Transform faultsim.ConfigTransform
	// Values are the fault-strength parameters of the modelled universe.
	Values fault.Values
	// Universe is the modelled fault list the dictionary is built over.
	Universe []fault.Fault
	// ATE optionally supplies prebuilt test equipment for TS/Transform
	// (e.g. the service's memoized artifact ATE); nil builds one.
	ATE *tester.ATE
	// Core is the crossbar geometry (zero value = DefaultCoreShape).
	Core chip.CoreShape
	// SpareAxons / SpareNeurons reserve spare lines per core (the repair
	// budget; see chip.Config).
	SpareAxons   int
	SpareNeurons int
	// WeightBits is the weight-memory width (0 = 8).
	WeightBits int
	// WorkloadSamples sizes the synthetic application dataset (0 = 64).
	WorkloadSamples int
	// Seed derives the workload, training and chip sub-seeds.
	Seed uint64
	// Opt tunes the repair policy.
	Opt Options
}

// Loop is one instantiated repair substrate: dictionary, programmed chip,
// trained application classifier and retest equipment. Build it once per
// (spec, geometry) and run many dies through it. A Loop is safe for
// concurrent Run calls: every phase reads shared immutable state except
// reprogram, which is serialised by mu (one physical programmer per chip).
type Loop struct {
	mu      sync.Mutex
	cfg     Config
	dict    *diagnose.Dictionary
	ate     *tester.ATE
	chip    *chip.Chip
	eff     *snn.Network
	cl      *apptest.Classifier
	ds      *apptest.Dataset
	planner Planner
	golden  float64
}

// New builds the repair substrate: the fault dictionary over cfg.Universe,
// a trained application classifier, and a chip programmed with it.
func New(cfg Config) (*Loop, error) {
	if cfg.TS == nil {
		return nil, fmt.Errorf("repair: config has no test set")
	}
	if cfg.Core == (chip.CoreShape{}) {
		cfg.Core = chip.DefaultCoreShape()
	}
	if cfg.WeightBits == 0 {
		cfg.WeightBits = 8
	}
	if cfg.WorkloadSamples == 0 {
		cfg.WorkloadSamples = 64
	}
	if margin.ExactEq(cfg.Opt.Margin, 0) {
		cfg.Opt.Margin = DefaultMarginFraction * cfg.TS.Params.Theta
	}
	if margin.ExactEq(cfg.Opt.AccuracyBudget, 0) {
		cfg.Opt.AccuracyBudget = DefaultAccuracyBudget
	}
	arch := cfg.TS.Arch

	dict := diagnose.Build(cfg.TS, cfg.Values, cfg.Transform, cfg.Universe)

	classes := arch.Outputs()
	perClass := max(2, cfg.WorkloadSamples/classes)
	ds, err := apptest.Synthetic(arch.Inputs(), classes, perClass, 0.3, 0.05, cfg.Seed+101)
	if err != nil {
		return nil, err
	}
	cl, err := apptest.Train(ds, apptest.TrainOptions{Arch: arch, Params: cfg.TS.Params, Seed: cfg.Seed + 202})
	if err != nil {
		return nil, err
	}

	ch, err := chip.New(chip.Config{
		Arch: arch, Params: cfg.TS.Params, Core: cfg.Core,
		WeightBits: cfg.WeightBits,
		SpareAxons: cfg.SpareAxons, SpareNeurons: cfg.SpareNeurons,
	}, cfg.Seed+7)
	if err != nil {
		return nil, err
	}
	if err := ch.Program(cl.Net); err != nil {
		return nil, err
	}
	eff, err := ch.EffectiveNetwork()
	if err != nil {
		return nil, err
	}

	ate := cfg.ATE
	if ate == nil {
		ate = tester.New(cfg.TS, cfg.Transform)
	}
	if cfg.Opt.Tolerance > 0 {
		ate, err = ate.CloneWithTolerance(cfg.Opt.Tolerance)
		if err != nil {
			return nil, err
		}
	}

	l := &Loop{
		cfg: cfg, dict: dict, ate: ate, chip: ch, eff: eff, cl: cl, ds: ds,
		planner: Planner{Chip: ch, Net: cl.Net, Margin: cfg.Opt.Margin},
	}
	l.golden = l.accuracy(nil)
	return l, nil
}

// Dictionary returns the fault dictionary the loop diagnoses against.
func (l *Loop) Dictionary() *diagnose.Dictionary { return l.dict }

// Chip returns the loop's programmed chip (spare budgets, geometry).
func (l *Loop) Chip() *chip.Chip { return l.chip }

// GoldenAccuracy returns the fault-free application accuracy baseline.
func (l *Loop) GoldenAccuracy() float64 { return l.golden }

// accuracy evaluates the application workload on the chip's effective
// network under a defect modifier set.
func (l *Loop) accuracy(mods *snn.Modifiers) float64 {
	if len(l.ds.Samples) == 0 {
		return 0
	}
	ok := 0
	for _, s := range l.ds.Samples {
		if l.cl.Predict(l.eff, s.Input, mods) == s.Label {
			ok++
		}
	}
	return float64(ok) / float64(len(l.ds.Samples))
}

// Run drives one die through the closed loop: structural test, dictionary
// diagnosis, plan computation, chip reprogram and retest. defect is the
// die's physical defect as behavioural modifiers (nil = defect-free);
// publish, when non-nil, receives one PhaseEvent as each phase completes.
// The returned plan is nil for a Healthy die.
//
// Reprogramming rewrites the chip's weight memories from the same
// configuration (clearing soft upsets per the chip.Program contract); on
// the variation-free chips the loop builds, the rewritten state is
// identical, and the write itself is serialised by the loop's mutex.
func (l *Loop) Run(ctx context.Context, defect *snn.Modifiers, publish func(PhaseEvent)) (*Report, *Plan, error) {
	ensureObs()
	timer := startRepairTimer()
	emit := func(phase, format string, args ...any) {
		if publish != nil {
			publish(PhaseEvent{Phase: phase, Detail: fmt.Sprintf(format, args...)})
		}
	}
	rep := &Report{GoldenAccuracy: l.golden}

	// Phase 1: structural test (full signature — diagnosis needs every bit).
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	sig := diagnose.ObserveChip(l.cfg.TS, l.cfg.Transform, defect)
	rep.PreFails = sig.CountFails()
	rep.PreAccuracy = l.accuracy(defect)
	emit("test", "%d of %d items fail, application accuracy %.4f", rep.PreFails, len(l.cfg.TS.Items), rep.PreAccuracy)
	if rep.PreFails == 0 {
		rep.PostFails = 0
		rep.PostAccuracy = rep.PreAccuracy
		rep.Verdict = Healthy
		observeRepair(timer, rep, nil)
		return rep, nil, nil
	}

	// Phase 2: dictionary diagnosis (subset-consistent candidates).
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	cands := l.dict.Candidates(sig)
	rep.Candidates = len(cands)
	emit("diagnose", "%d candidate faults over %d dictionary classes", len(cands), l.dict.Classes())

	// Phase 3: deterministic plan.
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	plan, err := l.planner.Plan(cands)
	if err != nil {
		return nil, nil, err
	}
	rep.ColumnsRemapped = plan.Columns()
	rep.RowsSwapped = plan.Rows()
	rep.CellsBypassed = plan.Bypassed()
	rep.CellsRetired = plan.CellsRetired()
	rep.UnrepairableFaults = len(plan.Unrepairable)
	emit("plan", "%d actions: %d columns remapped, %d rows swapped, %d cells bypassed, %d unrepairable",
		len(plan.Actions), plan.Columns(), plan.Rows(), plan.Bypassed(), len(plan.Unrepairable))

	// Phase 4: reprogram the effective configuration.
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	l.mu.Lock()
	err = l.chip.Program(l.cl.Net)
	l.mu.Unlock()
	if err != nil {
		return nil, nil, err
	}
	emit("reprogram", "configuration rewritten across %d cores", l.chip.NumCores())

	// Phase 5: retest the repaired die. The structural retest masks the
	// plan's retired resources (Uncured: the plan is the die's known-bad
	// map, like mapped-out rows in memory test) — any failing item means a
	// defect the repair did not cover. Application accuracy, by contrast,
	// runs the die's true post-repair behaviour (Residual), paying for
	// every disconnected cell.
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	uncured := plan.Uncured(defect)
	v := l.ate.RunChip(uncured, variation.None(), nil)
	rep.RetestItems = v.ItemsRun
	if v.Passed {
		rep.PostFails = 0
	} else {
		rep.PostFails = diagnose.ObserveChip(l.cfg.TS, l.cfg.Transform, uncured).CountFails()
	}
	rep.PostAccuracy = l.accuracy(plan.Residual(defect))
	accuracyOK := rep.PostAccuracy >= rep.GoldenAccuracy-l.cfg.Opt.AccuracyBudget
	switch {
	case v.Passed && accuracyOK:
		rep.Verdict = Repaired
	case accuracyOK && !plan.Empty():
		rep.Verdict = Degraded
	default:
		rep.Verdict = Unrepairable
	}
	emit("retest", "%s: %d items run, %d fail, accuracy %.4f (golden %.4f)",
		rep.Verdict, rep.RetestItems, rep.PostFails, rep.PostAccuracy, rep.GoldenAccuracy)
	observeRepair(timer, rep, plan)
	return rep, plan, nil
}
