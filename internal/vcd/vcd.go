// Package vcd exports simulation traces as Value Change Dump files (IEEE
// 1364 §18), the interchange format every waveform viewer reads. A dumped
// trace shows each neuron's spike output as a 1-bit signal and, optionally,
// its weighted input charge as a real-valued signal — the neuromorphic
// analogue of probing a DUT with a logic analyser, and a convenient way to
// eyeball why a test item activates or propagates a fault.
package vcd

import (
	"bufio"
	"fmt"
	"io"

	"neurotest/internal/margin"
	"neurotest/internal/snn"
)

// Options controls what gets dumped.
type Options struct {
	// Module is the top-level scope name (default "snn").
	Module string
	// DumpCharge also emits each neuron's weighted input sum y as a real
	// signal (layers >= 1 only).
	DumpCharge bool
	// TimescaleNS is the nanoseconds per timestep (default 1000 — one
	// microsecond per SNN timestep).
	TimescaleNS int
}

// Write dumps a recorded trace as VCD. The trace must come from
// Simulator.RunTrace on a network of the given architecture.
func Write(w io.Writer, arch snn.Arch, trace *snn.Trace, opt Options) error {
	if err := arch.Validate(); err != nil {
		return err
	}
	if trace == nil || trace.Timesteps <= 0 {
		return fmt.Errorf("vcd: empty trace")
	}
	if len(trace.X) != arch.Layers() {
		return fmt.Errorf("vcd: trace has %d layers, architecture %d", len(trace.X), arch.Layers())
	}
	if opt.Module == "" {
		opt.Module = "snn"
	}
	if opt.TimescaleNS <= 0 {
		opt.TimescaleNS = 1000
	}

	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "$date reproduction of DAC'24 neuromorphic test generation $end\n")
	fmt.Fprintf(bw, "$version neurotest vcd writer $end\n")
	fmt.Fprintf(bw, "$timescale %d ns $end\n", opt.TimescaleNS)
	fmt.Fprintf(bw, "$scope module %s $end\n", opt.Module)

	// Identifier allocation: VCD id chars are printable ASCII 33..126.
	next := 0
	newID := func() string {
		id := ""
		n := next
		next++
		for {
			id = string(rune(33+n%94)) + id
			n = n / 94
			if n == 0 {
				break
			}
			n--
		}
		return id
	}

	spikeIDs := make([][]string, arch.Layers())
	chargeIDs := make([][]string, arch.Layers())
	for k := 0; k < arch.Layers(); k++ {
		fmt.Fprintf(bw, " $scope module layer%d $end\n", k+1)
		spikeIDs[k] = make([]string, arch[k])
		for i := 0; i < arch[k]; i++ {
			id := newID()
			spikeIDs[k][i] = id
			fmt.Fprintf(bw, "  $var wire 1 %s spike_%d $end\n", id, i+1)
		}
		if opt.DumpCharge && k > 0 {
			chargeIDs[k] = make([]string, arch[k])
			for i := 0; i < arch[k]; i++ {
				id := newID()
				chargeIDs[k][i] = id
				fmt.Fprintf(bw, "  $var real 64 %s charge_%d $end\n", id, i+1)
			}
		}
		fmt.Fprintf(bw, " $upscope $end\n")
	}
	fmt.Fprintf(bw, "$upscope $end\n$enddefinitions $end\n")

	// Initial values.
	fmt.Fprintf(bw, "$dumpvars\n")
	for k := range spikeIDs {
		for _, id := range spikeIDs[k] {
			fmt.Fprintf(bw, "0%s\n", id)
		}
		for _, id := range chargeIDs[k] {
			fmt.Fprintf(bw, "r0 %s\n", id)
		}
	}
	fmt.Fprintf(bw, "$end\n")

	// Value changes. Spikes are one-timestep pulses: raise at the step's
	// start, lower at its midpoint, so viewers show discrete events.
	half := opt.TimescaleNS / 2
	if half == 0 {
		half = 1
	}
	prevCharge := make([][]float64, arch.Layers())
	for k := range prevCharge {
		prevCharge[k] = make([]float64, arch[k])
	}
	for t := 0; t < trace.Timesteps; t++ {
		stamp := t * opt.TimescaleNS
		fmt.Fprintf(bw, "#%d\n", stamp)
		var lower []string
		for k := 0; k < arch.Layers(); k++ {
			for i := 0; i < arch[k]; i++ {
				sp := trace.X[k][i]&(1<<uint(t)) != 0
				if sp {
					fmt.Fprintf(bw, "1%s\n", spikeIDs[k][i])
					lower = append(lower, spikeIDs[k][i])
				}
				if opt.DumpCharge && k > 0 {
					y := trace.Y[k][t*arch[k]+i]
					if !margin.ExactEq(y, prevCharge[k][i]) {
						fmt.Fprintf(bw, "r%g %s\n", y, chargeIDs[k][i])
						prevCharge[k][i] = y
					}
				}
			}
		}
		if len(lower) > 0 {
			fmt.Fprintf(bw, "#%d\n", stamp+half)
			for _, id := range lower {
				fmt.Fprintf(bw, "0%s\n", id)
			}
		}
	}
	fmt.Fprintf(bw, "#%d\n", trace.Timesteps*opt.TimescaleNS)
	return bw.Flush()
}
