package vcd

import (
	"strings"
	"testing"

	"neurotest/internal/snn"
)

func traceOf(t *testing.T) (snn.Arch, *snn.Trace) {
	t.Helper()
	arch := snn.Arch{2, 2, 1}
	net := snn.New(arch, snn.DefaultParams())
	net.SetEntry(0, 0, 0, 1)
	net.SetEntry(1, 0, 0, 1)
	sim := snn.NewSimulator(net)
	_, trace := sim.RunTrace(snn.Pattern{true, false}, 3, snn.ApplyOnce, nil)
	return arch, trace
}

func TestWriteBasicStructure(t *testing.T) {
	arch, trace := traceOf(t)
	var sb strings.Builder
	if err := Write(&sb, arch, trace, Options{}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"$timescale 1000 ns $end",
		"$scope module snn $end",
		"$scope module layer1 $end",
		"$scope module layer3 $end",
		"$enddefinitions $end",
		"$dumpvars",
		"#0",
		"#3000", // final timestamp: 3 steps x 1000ns
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD missing %q", want)
		}
	}
	// 5 spike vars for 2+2+1 neurons.
	if got := strings.Count(out, "$var wire 1 "); got != 5 {
		t.Errorf("spike vars = %d, want 5", got)
	}
	// No charge vars without DumpCharge.
	if strings.Contains(out, "$var real") {
		t.Errorf("unexpected charge vars")
	}
}

func TestWriteSpikesPulse(t *testing.T) {
	arch, trace := traceOf(t)
	var sb strings.Builder
	if err := Write(&sb, arch, trace, Options{TimescaleNS: 10}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// The driven input and both downstream neurons spike at t=0: three
	// rising edges after #0 and matching falls at the half-step #5.
	idx0 := strings.Index(out, "#0\n")
	idx5 := strings.Index(out, "#5\n")
	if idx0 < 0 || idx5 < 0 || idx5 < idx0 {
		t.Fatalf("pulse timestamps missing:\n%s", out)
	}
	rises := strings.Count(out[idx0:idx5], "\n1")
	if rises != 3 {
		t.Errorf("rising edges = %d, want 3", rises)
	}
}

func TestWriteWithCharge(t *testing.T) {
	arch, trace := traceOf(t)
	var sb strings.Builder
	if err := Write(&sb, arch, trace, Options{DumpCharge: true}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// Charge vars only for non-input layers: 2+1 = 3 reals.
	if got := strings.Count(out, "$var real 64 "); got != 3 {
		t.Errorf("charge vars = %d, want 3", got)
	}
	if !strings.Contains(out, "r1 ") {
		t.Errorf("expected charge value r1 for the driven neuron")
	}
}

func TestWriteErrors(t *testing.T) {
	arch, trace := traceOf(t)
	if err := Write(&strings.Builder{}, snn.Arch{1}, trace, Options{}); err == nil {
		t.Errorf("bad arch accepted")
	}
	if err := Write(&strings.Builder{}, arch, nil, Options{}); err == nil {
		t.Errorf("nil trace accepted")
	}
	if err := Write(&strings.Builder{}, snn.Arch{2, 2}, trace, Options{}); err == nil {
		t.Errorf("layer mismatch accepted")
	}
}

func TestIdentifierAllocationUnique(t *testing.T) {
	// Force > 94 identifiers to exercise multi-character IDs.
	arch := snn.Arch{60, 50}
	net := snn.New(arch, snn.DefaultParams())
	sim := snn.NewSimulator(net)
	_, trace := sim.RunTrace(snn.NewPattern(60), 2, snn.ApplyOnce, nil)
	var sb strings.Builder
	if err := Write(&sb, arch, trace, Options{DumpCharge: true}); err != nil {
		t.Fatal(err)
	}
	ids := map[string]bool{}
	for _, line := range strings.Split(sb.String(), "\n") {
		fields := strings.Fields(line)
		if len(fields) >= 5 && fields[0] == "$var" {
			id := fields[3]
			if ids[id] {
				t.Fatalf("duplicate identifier %q", id)
			}
			ids[id] = true
		}
	}
	if len(ids) != 60+50+50 {
		t.Errorf("allocated %d ids, want 160", len(ids))
	}
}
