// Quickstart: generate the paper's test suite for the 4-layer evaluation
// model, fault-simulate the full fault universes, and print coverage — the
// library's headline result (100 % coverage with O(L) configurations and
// patterns) in under a minute.
package main

import (
	"fmt"
	"log"

	"neurotest"
)

func main() {
	// The paper's 4-layer model: 576-256-32-10 (Table 4), θ = 0.5,
	// ωmax = 20θ, ESF θ̂ = 0.1θ, HSF θ̂ = 1.9θ, ω̂ = 2θ (Section 5.1).
	model := neurotest.FourLayerModel()

	// Generate the test suite with the no-variation settings (Table 1/2
	// "No" columns) — one configuration+pattern per covering group.
	suite, err := model.GenerateSuite(neurotest.NoVariation())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("model %v\n\n", model.Arch)
	fmt.Println("kind  configs  patterns  test-length  coverage")
	for _, kind := range []neurotest.FaultKind{
		neurotest.NASF, neurotest.ESF, neurotest.HSF, neurotest.SWF, neurotest.SASF,
	} {
		ts := suite.PerKind[kind]
		cov, err := model.MeasureCoverage(kind, ts, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5v %7d  %8d  %11d  %v\n",
			kind, ts.NumConfigs(), ts.NumPatterns(), ts.TestLength(), cov)
	}

	fmt.Printf("\ntotal test length: %d patterns applied once each\n", suite.TotalTestLength())
	fmt.Println("(the statistical baselines of the paper need 10^5..10^6; see cmd/experiments)")
}
