// Diagnosis: beyond detection — build a fault dictionary from the O(L)
// test program and locate an unknown defect from the pass/fail signature a
// tester observes.
//
// The paper stops at pass/fail screening; this example shows the library's
// extension to fault localisation and measures how *diagnosable* the
// minimal test sets are: items are layer-targeted, so a signature always
// pins down the failing layer (and often much more), while faults inside
// one covering group remain equivalent — the classic resolution-vs-test-
// length trade-off.
package main

import (
	"fmt"
	"log"

	"neurotest"
)

func main() {
	model := neurotest.NewModel(96, 48, 16, 8)
	suite, err := model.GenerateSuite(neurotest.NoVariation())
	if err != nil {
		log.Fatal(err)
	}
	program := suite.Merged
	fmt.Printf("model %v: %d-item test program\n", model.Arch, program.NumPatterns())

	// Build the dictionary over all five fault universes.
	var universe []neurotest.Fault
	for _, k := range []neurotest.FaultKind{
		neurotest.NASF, neurotest.ESF, neurotest.HSF, neurotest.SWF, neurotest.SASF,
	} {
		universe = append(universe, model.Universe(k)...)
	}
	fmt.Printf("building dictionary over %d faults ...\n", len(universe))
	dict := model.BuildDictionary(program, nil, universe)
	fmt.Println(dict)
	res := dict.Resolution()
	fmt.Printf("resolution: %d signature classes, %d faults uniquely diagnosed, mean candidates %.1f\n\n",
		res.Classes, res.UniquelyDiagnosed, res.MeanClassSize)

	// A "returned die" with an unknown defect (we secretly know it).
	secret := model.Universe(neurotest.HSF)[50]
	fmt.Printf("testing a returned die (secret defect: %v) ...\n", secret)
	sig := model.DiagnoseChip(program, nil, secret.Modifiers(model.Values))
	fmt.Printf("observed signature: %s  (%d failing items)\n", sig, sig.CountFails())
	for i := 0; i < program.NumPatterns(); i++ {
		if sig.Fails(i) {
			fmt.Printf("  failing item: %s\n", program.Items[i].Label)
		}
	}

	candidates := dict.Lookup(sig)
	fmt.Printf("diagnosis: %d candidate fault(s)\n", len(candidates))
	for i, c := range candidates {
		if i >= 8 {
			fmt.Printf("  ... and %d more\n", len(candidates)-8)
			break
		}
		marker := ""
		if c == secret {
			marker = "   <== the actual defect"
		}
		fmt.Printf("  %v%s\n", c, marker)
	}

	fmt.Println(`
The minimal O(L) program localises the failing layer by construction (each
item targets one layer's covering group). For finer resolution, generate
with a ν-limited regime — smaller covering groups mean more items and
sharper signatures — or apply adaptive follow-up patterns to the candidate
set.`)
}
