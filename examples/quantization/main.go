// Quantization study: how narrow can the chip's weight memory get before
// the generated tests stop working — and how much the quantizer's scale
// granularity matters.
//
// Reproduces the paper's Section 5.2 claim that test effectiveness is
// maintained even with 4-bit weight quantization, and shows the mechanism:
// generated configurations use at most six weight levels, and per-channel
// scale calibration keeps every level exactly representable. With one
// shared scale per boundary, 4-bit HSF tests break — the 0.725 activation
// level collides with the ±ωmax saturation levels on a 15-level grid.
package main

import (
	"fmt"
	"log"

	"neurotest"
)

func main() {
	model := neurotest.NewModel(256, 128, 32, 10)
	suite, err := model.GenerateSuite(neurotest.NoVariation())
	if err != nil {
		log.Fatal(err)
	}

	kinds := []neurotest.FaultKind{
		neurotest.NASF, neurotest.ESF, neurotest.HSF, neurotest.SWF, neurotest.SASF,
	}

	fmt.Printf("model %v — coverage under weight-memory quantization\n\n", model.Arch)
	fmt.Println("bits  granularity   NASF     ESF      HSF      SWF      SASF")

	type cfg struct {
		bits int
		gran string
	}
	cases := []cfg{
		{8, "channel"}, {8, "boundary"}, {8, "network"},
		{4, "channel"}, {4, "boundary"},
		{3, "channel"},
	}
	for _, c := range cases {
		gran := map[string]neurotest.Granularity{
			"channel":  neurotest.PerChannel,
			"boundary": neurotest.PerBoundary,
			"network":  neurotest.PerNetwork,
		}[c.gran]
		scheme, err := neurotest.NewQuantScheme(c.bits, gran)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%4d  %-12s", c.bits, c.gran)
		for _, kind := range kinds {
			cov, err := model.MeasureCoverage(kind, suite.PerKind[kind], &scheme)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %6.2f%%", cov.Coverage())
		}
		fmt.Println()
	}

	fmt.Println(`
Reading the table:
  * 8-bit works at every granularity (the paper's Tables 5/6 rows).
  * 4-bit per-channel still reaches 100 % — the six generated weight levels
    are exact on per-channel max-abs grids (the paper's 4-bit claim).
  * 4-bit per-boundary loses HSF: the (θ+θ̂)/2 = 0.725 activation level
    shares a 15-level grid with ±ωmax and snaps to 10/7 ≈ 1.43 > θ̂.
  * even 3-bit per-channel keeps 100 %: each generated column carries at
    most two distinct magnitudes, so the scale granularity — not the bit
    width — is what decides test survival.`)
}
