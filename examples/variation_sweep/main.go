// Variation sweep: reproduce the spirit of the paper's Fig. 4 on a
// medium-size model — test escape and overkill of the variation-aware test
// suite as memristive weight variation σ grows, plus the ν values behind
// the "negligible variation" boundary.
//
// The paper's claim: with the variation-aware settings (Table 1/2 "Yes"
// columns), the method incurs 0 % escape and 0 % overkill up to σ = 10 % θ.
package main

import (
	"fmt"
	"log"

	"neurotest"
	"neurotest/internal/fault"
	"neurotest/internal/tester"
)

func main() {
	model := neurotest.NewModel(256, 128, 32, 10)

	// Variation-aware generation under the negligible-variation assumption
	// (ν > every layer width), exactly how the paper runs its sweep.
	g, err := model.Generator(neurotest.NegligibleVariation())
	if err != nil {
		log.Fatal(err)
	}
	_, merged := g.GenerateAll()
	fmt.Printf("model %v: %d configurations, %d patterns (variation-aware)\n\n",
		model.Arch, merged.NumConfigs(), merged.NumPatterns())

	// ν for each σ tells us where the formal guarantee holds: variation is
	// negligible while ν exceeds the widest layer (Section 4.2).
	fmt.Println("sigma/theta    nu     negligible?   escape   overkill")
	ate := tester.New(merged, nil)
	faults := tester.SampleFaults(model.Arch, fault.Kinds(), 300, 1)
	for _, frac := range []float64{0.02, 0.05, 0.08, 0.10, 0.125, 0.15, 0.20} {
		vary := neurotest.VariationOfTheta(frac, model.Params.Theta)
		nu := vary.Nu(model.Params.WMax, 3)
		negligible := vary.Negligible(model.Arch, model.Params.WMax, 3)
		escape := ate.MeasureEscape(faults, model.Values, vary, 11)
		overkill := ate.MeasureOverkill(150, vary, 13)
		fmt.Printf("%11.3f %5d   %-12v %7.2f%% %9.2f%%\n",
			frac, nu, negligible, escape, overkill)
	}

	fmt.Println(`
Expected picture (mirrors the paper's Fig. 4):
  * while ν exceeds the widest layer, variation is formally negligible and
    both metrics stay at 0 %;
  * past ≈ 10-12 % θ the accumulated weight error starts flipping the
    engineered Ω margins and overkill rises sharply;
  * escape stays pinned at 0 % — a fault's effect is engineered to be a
    full ωmax swing, which variation of this magnitude cannot mask.`)
}
