// Application-dependent vs application-independent testing — the
// comparison that motivates the paper (Section 1).
//
// We train an SNN classifier on a synthetic edge-vision-style workload,
// screen dies the application-dependent way (apply samples, reject on a
// changed prediction) and the paper's way (the deterministic O(L) test
// program), and compare structural fault coverage. The functional test
// misses every fault that happens not to disturb this one application —
// but a configurable chip will be reprogrammed, and yesterday's harmless
// fault is tomorrow's critical one.
package main

import (
	"fmt"
	"log"

	"neurotest"
	"neurotest/internal/apptest"
	"neurotest/internal/fault"
	"neurotest/internal/stats"
	"neurotest/internal/tester"
)

func main() {
	model := neurotest.NewModel(48, 24, 4)
	params := model.Params

	// 1. The application: a 4-class prototype classification task.
	ds, err := apptest.Synthetic(48, 4, 40, 0.4, 0.05, 11)
	if err != nil {
		log.Fatal(err)
	}
	train, test := ds.Split(0.7, 12)
	cl, err := apptest.Train(train, apptest.TrainOptions{
		Arch:   model.Arch,
		Params: params,
		Seed:   13,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("application: 4-class task on %v, accuracy train %.1f%% / test %.1f%%\n",
		model.Arch, 100*cl.Accuracy(train), 100*cl.Accuracy(test))

	// 2. Fault population: every neuron fault plus sampled synapse faults.
	var faults []neurotest.Fault
	for _, k := range []neurotest.FaultKind{neurotest.NASF, neurotest.ESF, neurotest.HSF} {
		faults = append(faults, model.Universe(k)...)
	}
	faults = append(faults, tester.SampleFaults(model.Arch,
		[]fault.Kind{fault.SWF, fault.SASF}, 400, 17)...)
	fmt.Printf("fault population: %d faults\n\n", len(faults))

	// 3. Application-dependent screening: apply the test-set stimuli to
	// the application-configured chip; reject on any changed prediction.
	funcRes := cl.FunctionalScreen(test, faults, model.Values)
	fmt.Printf("application-dependent (functional) screening:\n")
	fmt.Printf("  coverage: %.1f%% (%d/%d faults)\n",
		funcRes.Coverage(), funcRes.Detected, funcRes.Total)
	worst, mean := 1.0, 0.0
	for _, acc := range funcRes.UndetectedAccuracy {
		if acc < worst {
			worst = acc
		}
		mean += acc
	}
	if n := len(funcRes.UndetectedAccuracy); n > 0 {
		fmt.Printf("  %d escaped faults keep application accuracy mean %.1f%% (worst %.1f%%)\n",
			n, 100*mean/float64(n), 100*worst)
	}

	// 4. Application-independent screening: the paper's O(L) program.
	suite, err := model.GenerateSuite(neurotest.NoVariation())
	if err != nil {
		log.Fatal(err)
	}
	ate := model.NewATE(suite.Merged, nil)
	detected := 0
	for _, f := range faults {
		if !ate.RunChip(f.Modifiers(model.Values), neurotest.VariationOfTheta(0, params.Theta), stats.NewRNG(1)).Passed {
			detected++
		}
	}
	fmt.Printf("\napplication-independent (proposed) screening:\n")
	fmt.Printf("  coverage: %.1f%% (%d/%d faults) with %d pattern applications\n",
		100*float64(detected)/float64(len(faults)), detected, len(faults),
		suite.Merged.TestLength())

	fmt.Println(`
The functional test exercises one configuration and misses faults that
this application tolerates; the deterministic program tests the silicon
for every configuration it could ever be programmed with — using a
two-digit number of pattern applications.`)
}
