// Custom model: the full production flow on a user-defined chip family —
// define an architecture and LIF parameters, generate tests, program them
// into the hardware chip model (crossbar cores with a quantized weight
// memory), store the test program in the compact binary tester format, and
// screen a batch of dies that includes known-bad ones.
package main

import (
	"bytes"
	"fmt"
	"log"

	"neurotest"
	"neurotest/internal/chip"
	"neurotest/internal/fault"
	"neurotest/internal/pattern"
	"neurotest/internal/snn"
	"neurotest/internal/tester"
	"neurotest/internal/variation"
)

func main() {
	// A custom edge-inference chip: 4 layers, 128 sensor inputs.
	model := neurotest.NewModel(128, 64, 24, 4)
	fmt.Printf("chip family %v: %d neurons, %d synapses\n",
		model.Arch, model.Arch.Neurons(), model.Arch.Synapses())

	// 1. Generate the test program.
	g, err := model.Generator(neurotest.NoVariation())
	if err != nil {
		log.Fatal(err)
	}
	_, program := g.GenerateAll()
	fmt.Printf("test program: %d configurations, %d patterns\n",
		program.NumConfigs(), program.NumPatterns())

	// 2. Ship it in the compact tester format (round-trip shown here).
	var wire bytes.Buffer
	if err := pattern.WriteBinary(&wire, program); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tester image: %d bytes binary\n", wire.Len())
	program, err = pattern.ReadBinary(&wire)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Verify the program against the hardware model: program each
	// configuration into the crossbar chip (8-bit weight memory with
	// per-channel scales) and check the golden outputs survive the memory.
	hw, err := chip.New(chip.Config{
		Arch:       model.Arch,
		Params:     model.Params,
		Core:       chip.CoreShape{Axons: 64, Neurons: 64},
		WeightBits: 8,
	}, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hardware model: %d crossbar cores of 64x64\n", hw.NumCores())
	ate := tester.New(program, nil)
	for i, it := range program.Items {
		if err := hw.Program(program.Configs[it.ConfigIndex]); err != nil {
			log.Fatal(err)
		}
		got, err := hw.Apply(it.Pattern, it.Timesteps, nil)
		if err != nil {
			log.Fatal(err)
		}
		if !got.Equal(ate.Golden(i)) {
			log.Fatalf("item %d (%s): hardware output %v != golden %v",
				i, it.Label, got.SpikeCounts, ate.Golden(i).SpikeCounts)
		}
	}
	fmt.Println("hardware check: all items match golden responses on a good die")

	// 4. Screen a small batch: 6 good dies and 4 dies with seeded defects.
	batch := []struct {
		name string
		mods *snn.Modifiers
	}{
		{"die-01 (good)", nil},
		{"die-02 (good)", nil},
		{"die-03 (NASF n[2,5])", fault.NewNeuronFault(fault.NASF, snn.NeuronID{Layer: 1, Index: 4}).Modifiers(model.Values)},
		{"die-04 (good)", nil},
		{"die-05 (HSF n[3,1])", fault.NewNeuronFault(fault.HSF, snn.NeuronID{Layer: 2, Index: 0}).Modifiers(model.Values)},
		{"die-06 (SWF w[1,7,3])", fault.NewSynapseFault(fault.SWF, snn.SynapseID{Boundary: 0, Pre: 6, Post: 2}).Modifiers(model.Values)},
		{"die-07 (good)", nil},
		{"die-08 (SASF w[2,2,2])", fault.NewSynapseFault(fault.SASF, snn.SynapseID{Boundary: 1, Pre: 1, Post: 1}).Modifiers(model.Values)},
		{"die-09 (good)", nil},
		{"die-10 (good)", nil},
	}
	fmt.Println("\nscreening batch:")
	rng := neurotest.NewRNG(2024)
	for _, die := range batch {
		v := ate.RunChip(die.mods, variation.None(), rng)
		verdict := "PASS"
		if !v.Passed {
			verdict = fmt.Sprintf("FAIL at item %d (%s)", v.FailedItem, program.Items[v.FailedItem].Label)
		}
		fmt.Printf("  %-22s %s\n", die.name, verdict)
	}
}
