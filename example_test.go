package neurotest_test

import (
	"fmt"

	"neurotest"
)

// ExampleModel_GenerateSuite generates the paper's O(L) test suite for a
// small chip family and prints the per-model test counts.
func ExampleModel_GenerateSuite() {
	m := neurotest.NewModel(48, 24, 12, 6)
	suite, err := m.GenerateSuite(neurotest.NoVariation())
	if err != nil {
		panic(err)
	}
	for _, kind := range []neurotest.FaultKind{
		neurotest.NASF, neurotest.ESF, neurotest.HSF, neurotest.SWF, neurotest.SASF,
	} {
		ts := suite.PerKind[kind]
		fmt.Printf("%-4v %d configurations, %d patterns\n", kind, ts.NumConfigs(), ts.NumPatterns())
	}
	// Output:
	// NASF 1 configurations, 1 patterns
	// ESF  3 configurations, 3 patterns
	// HSF  6 configurations, 6 patterns
	// SWF  3 configurations, 3 patterns
	// SASF 1 configurations, 1 patterns
}

// ExampleModel_MeasureCoverage fault-simulates a generated test set
// exhaustively and reports its coverage.
func ExampleModel_MeasureCoverage() {
	m := neurotest.NewModel(48, 24, 12, 6)
	suite, _ := m.GenerateSuite(neurotest.NoVariation())
	cov, _ := m.MeasureCoverage(neurotest.SWF, suite.PerKind[neurotest.SWF], nil)
	fmt.Println(cov)
	// Output:
	// 100.00% (1512/1512)
}

// ExampleModel_NewATE screens a defective die with the generated program.
func ExampleModel_NewATE() {
	m := neurotest.NewModel(24, 12, 6)
	suite, _ := m.GenerateSuite(neurotest.NoVariation())
	ate := m.NewATE(suite.Merged, nil)

	good := ate.RunChip(nil, neurotest.VariationOfTheta(0, m.Params.Theta), nil)
	fmt.Println("good die passes:", good.Passed)

	defect := m.Universe(neurotest.NASF)[0]
	bad := ate.RunChip(defect.Modifiers(m.Values), neurotest.VariationOfTheta(0, m.Params.Theta), nil)
	fmt.Println("defective die passes:", bad.Passed)
	// Output:
	// good die passes: true
	// defective die passes: false
}

// ExampleRegimeForSigma computes the paper's ν for a concrete variation
// level (Eq. 4) and shows when variation counts as negligible.
func ExampleRegimeForSigma() {
	// ωmax = 10, σ = 10 % of θ = 0.05, c = 3 (99.7 % confidence).
	r := neurotest.RegimeForSigma(10, 0.05, 3)
	fmt.Println("ν =", r.Nu)
	// ν exceeds the widest layer of the paper's models (576), so 10 % θ is
	// negligible — the basis of the Fig. 4 claim.
	// Output:
	// ν = 1111
}
