// Benchmarks regenerating each table and figure of the paper's evaluation,
// plus ablations for the design choices called out in DESIGN.md.
//
// One bench per experiment:
//
//	BenchmarkTable3_GenerationComplexity — Table 3 (generation counts, both models)
//	BenchmarkTable5_NeuronFaults         — Table 5 (neuron-fault coverage, 4-layer)
//	BenchmarkTable6_SynapseFaults        — Table 6 (synapse-fault coverage, 4-layer)
//	BenchmarkRatio_TestLength            — the total-test-length ratio rows
//	BenchmarkFigure4_TestEscape          — Fig. 4a (escape at σ = 10 % θ)
//	BenchmarkFigure4_Overkill            — Fig. 4c (overkill at σ = 10 % θ)
//
// Ablations:
//
//	BenchmarkAblationQuantGranularity    — per-channel vs per-boundary 4-bit
//	BenchmarkAblationIncrementalEngine   — incremental vs brute-force fault sim
//	BenchmarkSimulatorForwardPass        — raw LIF sweep cost, paper model
//
// Run with: go test -bench=. -benchmem
package neurotest_test

import (
	"context"
	"sort"
	"testing"
	"time"

	"neurotest"
	"neurotest/internal/fault"
	"neurotest/internal/faultsim"
	"neurotest/internal/obs"
	"neurotest/internal/snn"
	"neurotest/internal/tester"
	"neurotest/internal/variation"
)

// benchModel is the paper's 4-layer evaluation model; benches that would be
// too slow per-iteration at full scale use a proportionally scaled model
// and note it.
func benchModel() *neurotest.Model { return neurotest.FourLayerModel() }

func mustSuite(b *testing.B, m *neurotest.Model, regime neurotest.Regime) *neurotest.Suite {
	b.Helper()
	s, err := m.GenerateSuite(regime)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkTable3_GenerationComplexity measures full-suite generation for
// both paper models under both regimes — the cost behind Table 3's counts.
func BenchmarkTable3_GenerationComplexity(b *testing.B) {
	models := []*neurotest.Model{neurotest.FourLayerModel(), neurotest.FiveLayerModel()}
	regimes := []neurotest.Regime{neurotest.NoVariation(), neurotest.NegligibleVariation()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range models {
			for _, r := range regimes {
				s := mustSuite(b, m, r)
				if s.TotalTestLength() == 0 {
					b.Fatal("empty suite")
				}
			}
		}
	}
}

// BenchmarkTable5_NeuronFaults measures exhaustive neuron-fault simulation
// (298 faults x 3 models) of the proposed suite on the 4-layer model — the
// work behind Table 5's proposed coverage cells.
func BenchmarkTable5_NeuronFaults(b *testing.B) {
	m := benchModel()
	suite := mustSuite(b, m, neurotest.NoVariation())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, kind := range []neurotest.FaultKind{neurotest.NASF, neurotest.ESF, neurotest.HSF} {
			cov, err := m.MeasureCoverage(kind, suite.PerKind[kind], nil)
			if err != nil {
				b.Fatal(err)
			}
			if cov.Coverage() != 100 {
				b.Fatalf("%v coverage %v", kind, cov)
			}
		}
	}
}

// BenchmarkTable6_SynapseFaults measures exhaustive synapse-fault
// simulation (2 x 155,968 faults) of the proposed suite on the 4-layer
// model — the work behind Table 6's proposed coverage cells.
func BenchmarkTable6_SynapseFaults(b *testing.B) {
	m := benchModel()
	suite := mustSuite(b, m, neurotest.NoVariation())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, kind := range []neurotest.FaultKind{neurotest.SASF, neurotest.SWF} {
			cov, err := m.MeasureCoverage(kind, suite.PerKind[kind], nil)
			if err != nil {
				b.Fatal(err)
			}
			if cov.Coverage() != 100 {
				b.Fatalf("%v coverage %v", kind, cov)
			}
		}
	}
}

// BenchmarkRatio_TestLength measures computing the total-test-length rows:
// suite generation plus length accounting for the proposed method (baseline
// campaign regeneration is benchmarked by its own package tests).
func BenchmarkRatio_TestLength(b *testing.B) {
	models := []*neurotest.Model{neurotest.FourLayerModel(), neurotest.FiveLayerModel()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total := 0
		for _, m := range models {
			s := mustSuite(b, m, neurotest.NoVariation())
			total += s.TotalTestLength()
		}
		// Paper totals: 1+3+6+1+3 = 14 (4-layer), 1+4+8+1+4 = 18 (5-layer).
		if total != 14+18 {
			b.Fatalf("total test length %d, want 32", total)
		}
	}
}

// BenchmarkFigure4_TestEscape measures one escape point of Fig. 4: 100
// sampled faulty chips at σ = 10 % θ against the variation-aware suite on
// the 4-layer model.
func BenchmarkFigure4_TestEscape(b *testing.B) {
	m := benchModel()
	suite := mustSuite(b, m, neurotest.NegligibleVariation())
	ate := tester.New(suite.Merged, nil)
	faults := tester.SampleFaults(m.Arch, fault.Kinds(), 100, 7)
	vary := variation.OfTheta(0.10, m.Params.Theta)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if esc := ate.MeasureEscape(faults, m.Values, vary, 11); esc != 0 {
			b.Fatalf("escape %g%% at 10%%θ", esc)
		}
	}
}

// BenchmarkFigure4_Overkill measures one overkill point of Fig. 4: 100 good
// chips at σ = 10 % θ on the 4-layer model.
func BenchmarkFigure4_Overkill(b *testing.B) {
	m := benchModel()
	suite := mustSuite(b, m, neurotest.NegligibleVariation())
	ate := tester.New(suite.Merged, nil)
	vary := variation.OfTheta(0.10, m.Params.Theta)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ate.MeasureOverkill(100, vary, uint64(13+i))
	}
}

// BenchmarkAblationQuantGranularity contrasts 4-bit per-channel (keeps
// 100 % HSF coverage) with 4-bit per-boundary (loses it) — the scale-
// granularity design choice from DESIGN.md.
func BenchmarkAblationQuantGranularity(b *testing.B) {
	m := neurotest.NewModel(128, 64, 24, 8)
	suite := mustSuite(b, m, neurotest.NoVariation())
	perChannel, err := neurotest.NewQuantScheme(4, neurotest.PerChannel)
	if err != nil {
		b.Fatal(err)
	}
	perBoundary, err := neurotest.NewQuantScheme(4, neurotest.PerBoundary)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		covC, err := m.MeasureCoverage(neurotest.HSF, suite.PerKind[neurotest.HSF], &perChannel)
		if err != nil {
			b.Fatal(err)
		}
		covB, err := m.MeasureCoverage(neurotest.HSF, suite.PerKind[neurotest.HSF], &perBoundary)
		if err != nil {
			b.Fatal(err)
		}
		if covC.Coverage() != 100 || covB.Coverage() == 100 {
			b.Fatalf("granularity ablation inverted: channel %v, boundary %v", covC, covB)
		}
	}
}

// BenchmarkAblationIncrementalEngine contrasts the incremental fault-
// simulation engine with brute-force full re-simulation on the same
// workload (all ESF faults of a scaled model) — the speedup that makes the
// exhaustive synapse campaigns tractable.
func BenchmarkAblationIncrementalEngine(b *testing.B) {
	m := neurotest.NewModel(96, 48, 16, 8)
	suite := mustSuite(b, m, neurotest.NoVariation())
	ts := suite.PerKind[neurotest.ESF]
	universe := m.Universe(neurotest.ESF)

	b.Run("incremental", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng := faultsim.New(ts, m.Values, nil)
			if got := eng.Coverage(universe); got != len(universe) {
				b.Fatalf("coverage %d/%d", got, len(universe))
			}
		}
	})
	b.Run("bruteforce", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			detected := 0
			for _, f := range universe {
				if bruteForceDetects(ts, m.Values, f) {
					detected++
				}
			}
			if detected != len(universe) {
				b.Fatalf("coverage %d/%d", detected, len(universe))
			}
		}
	})
}

func bruteForceDetects(ts *neurotest.TestSet, values neurotest.FaultValues, f neurotest.Fault) bool {
	for _, it := range ts.Items {
		net := ts.Configs[it.ConfigIndex]
		sim := snn.NewSimulator(net)
		golden := sim.Run(it.Pattern, it.Timesteps, snn.ApplyOnce, nil)
		faulty := sim.Run(it.Pattern, it.Timesteps, snn.ApplyOnce, f.Modifiers(values))
		if !faulty.Equal(golden) {
			return true
		}
	}
	return false
}

// BenchmarkCoverageCampaign measures a Table-5-class exhaustive campaign
// (every ESF fault of the paper's 4-layer model) through the ATE worker
// pool, in the two shapes the test floor actually runs it: "cold" builds
// the test equipment per campaign (the first request for an artifact),
// "warm" reuses one ATE across campaigns (repeated /v1/coverage requests
// hitting a cached artifact — the neurotestd access pattern). The warm
// shape is where the shared-Golden split pays: golden traces are simulated
// once per ATE instead of once per campaign per worker, and downstream
// memo entries survive across campaigns.
func BenchmarkCoverageCampaign(b *testing.B) {
	m := benchModel()
	suite := mustSuite(b, m, neurotest.NoVariation())
	ts := suite.PerKind[neurotest.ESF]
	universe := m.Universe(neurotest.ESF)
	run := func(b *testing.B, ate *tester.ATE) {
		b.Helper()
		cov := ate.MeasureCoverage(universe, m.Values)
		if cov.Coverage() != 100 {
			b.Fatalf("coverage %v", cov)
		}
	}
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			run(b, tester.New(ts, nil))
		}
	})
	b.Run("warm", func(b *testing.B) {
		ate := tester.New(ts, nil)
		run(b, ate) // prime golden traces the way a resident artifact is primed
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run(b, ate)
		}
	})
}

// BenchmarkObsOverhead_CoverageCampaign bounds the cost of the
// observability layer on a Table-5-class exhaustive campaign (all ESF
// faults of the paper's 4-layer model): an untraced run pays only the
// always-on instruments (nil-safe spans, pooled counters), a traced run
// additionally records the full phase-span timeline into a ring recorder.
// The two variants are interleaved within every iteration so slow machine
// drift cancels out of the comparison; the "overhead-%" metric is the
// traced-over-untraced cost, which DESIGN.md §11 budgets at under 2 %.
func BenchmarkObsOverhead_CoverageCampaign(b *testing.B) {
	m := benchModel()
	suite := mustSuite(b, m, neurotest.NoVariation())
	ts := suite.PerKind[neurotest.ESF]
	rec := obs.NewRecorder(0)

	campaign := func(ctx context.Context) {
		cov, err := m.MeasureCoverageContext(ctx, neurotest.ESF, ts, nil)
		if err != nil {
			b.Fatal(err)
		}
		if cov.Coverage() != 100 {
			b.Fatalf("coverage %v", cov)
		}
	}
	runUntraced := func() time.Duration {
		t0 := time.Now()
		campaign(context.Background())
		return time.Since(t0)
	}
	runTraced := func() time.Duration {
		t0 := time.Now()
		ctx, root := obs.StartTrace(context.Background(), rec, obs.TraceID("bench-overhead"), "coverage")
		campaign(ctx)
		root.End()
		return time.Since(t0)
	}
	ratios := make([]float64, 0, b.N)
	b.ReportAllocs()
	b.ResetTimer()
	// Alternate which variant goes first so position effects (GC debt from
	// the preceding campaign, cache warmth) cancel, and take the median of
	// the per-pair ratios so a stray GC pause landing in one variant cannot
	// skew the estimate the way a sum would.
	for i := 0; i < b.N; i++ {
		var u, tr time.Duration
		if i%2 == 0 {
			u = runUntraced()
			tr = runTraced()
		} else {
			tr = runTraced()
			u = runUntraced()
		}
		if u > 0 {
			ratios = append(ratios, tr.Seconds()/u.Seconds())
		}
	}
	b.StopTimer()
	if len(ratios) > 0 {
		sort.Float64s(ratios)
		b.ReportMetric(100*(ratios[len(ratios)/2]-1), "overhead-%")
	}
}

// BenchmarkSimulatorForwardPass measures the raw cost of one full
// time-stepped LIF sweep of the paper's 4-layer model with every input
// asserted — the simulator primitive everything above is built on.
func BenchmarkSimulatorForwardPass(b *testing.B) {
	m := benchModel()
	net := snn.New(m.Arch, m.Params)
	net.Fill(m.Params.WMax)
	sim := snn.NewSimulator(net)
	p := snn.OnesPattern(m.Arch.Inputs())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := sim.Run(p, 4, snn.ApplyOnce, nil)
		if res.SpikeCounts[0] == 0 {
			b.Fatal("saturated network silent")
		}
	}
}
