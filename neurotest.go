// Package neurotest is an open reproduction of "Low-Complexity Algorithmic
// Test Generation for Neuromorphic Chips" (Huang, Hsiao, Liu, Li — DAC
// 2024): deterministic generation of test configurations and test patterns
// for configurable SNN chips without scan DfT, achieving 100 % coverage of
// five behavioural fault models with O(L) tests per model.
//
// The package is a thin façade over the implementation packages. The main
// entry points are:
//
//	m := neurotest.NewModel(576, 256, 32, 10)      // the paper's 4-layer chip
//	suite, _ := m.GenerateSuite(neurotest.NoVariation())
//	cov, _ := m.MeasureCoverage(neurotest.SWF, suite.PerKind[neurotest.SWF], nil)
//
// See the examples directory for complete programs and cmd/experiments for
// the harness that regenerates every table and figure of the paper.
package neurotest

import (
	"context"
	"fmt"

	"neurotest/internal/compact"
	"neurotest/internal/core"
	"neurotest/internal/diagnose"
	"neurotest/internal/fault"
	"neurotest/internal/faultsim"
	"neurotest/internal/pattern"
	"neurotest/internal/quant"
	"neurotest/internal/snn"
	"neurotest/internal/stats"
	"neurotest/internal/tester"
	"neurotest/internal/unreliable"
	"neurotest/internal/variation"
)

// Re-exported core types. Aliases keep the implementation in internal
// packages while letting users name every type they receive.
type (
	// Arch is a layer-width vector, input layer first.
	Arch = snn.Arch
	// Params holds the shared LIF parameters (θ, leak, ωmax).
	Params = snn.Params
	// Network is a fully connected SNN / test configuration.
	Network = snn.Network
	// Pattern is a binary primary-input vector.
	Pattern = snn.Pattern
	// Result is a chip output: spike counts per output neuron.
	Result = snn.Result
	// NeuronID addresses a neuron as (layer, index), 0-based.
	NeuronID = snn.NeuronID
	// Modifiers injects behavioural deviations (defects) into simulations.
	Modifiers = snn.Modifiers
	// SynapseID addresses a synapse as (boundary, pre, post), 0-based.
	SynapseID = snn.SynapseID
	// Fault is one fault instance.
	Fault = fault.Fault
	// FaultKind is one of the five behavioural fault models.
	FaultKind = fault.Kind
	// FaultValues holds θ̂ and ω̂.
	FaultValues = fault.Values
	// TestSet is a complete test program.
	TestSet = pattern.TestSet
	// TestItem is one (configuration, pattern) application.
	TestItem = pattern.Item
	// Regime selects the no-variation or variation-aware settings.
	Regime = core.Regime
	// Generator emits test sets per fault model.
	Generator = core.Generator
	// ATE applies test programs to chips and measures quality metrics.
	ATE = tester.ATE
	// CoverageResult summarises a coverage campaign.
	CoverageResult = tester.CoverageResult
	// QuantScheme is a data-driven weight quantization scheme.
	QuantScheme = quant.Scheme
	// Granularity selects how many weights share one quantization scale.
	Granularity = quant.Granularity
	// VariationModel is an i.i.d. Gaussian weight-variation regime.
	VariationModel = variation.Model
	// RNG is the deterministic random source used throughout.
	RNG = stats.RNG
)

// Fault model constants.
const (
	NASF = fault.NASF
	ESF  = fault.ESF
	HSF  = fault.HSF
	SWF  = fault.SWF
	SASF = fault.SASF
)

// Quantization granularities.
const (
	PerNetwork  = quant.PerNetwork
	PerBoundary = quant.PerBoundary
	PerChannel  = quant.PerChannel
)

// NoVariation returns the regime using the "No" columns of Tables 1/2.
func NoVariation() Regime { return core.NoVariation() }

// NegligibleVariation returns the variation-aware regime with unbounded ν.
func NegligibleVariation() Regime { return core.NegligibleVariation() }

// RegimeForSigma returns the variation-aware regime with ν computed from σ.
func RegimeForSigma(omegaMax, sigma, c float64) Regime {
	return core.ForSigma(omegaMax, sigma, c)
}

// NewRNG returns a deterministic random source.
func NewRNG(seed uint64) *RNG { return stats.NewRNG(seed) }

// NewQuantScheme builds a quantization scheme. Bit widths outside [2, 16]
// are configuration errors.
func NewQuantScheme(bits int, gran quant.Granularity) (QuantScheme, error) {
	return quant.NewScheme(bits, gran)
}

// VariationOfTheta builds a variation model from the paper's "% of θ"
// convention.
func VariationOfTheta(fraction, theta float64) VariationModel {
	return variation.OfTheta(fraction, theta)
}

// Model bundles a chip family: architecture, LIF parameters and the fault
// strengths the tests aim at.
type Model struct {
	Arch      Arch
	Params    Params
	Values    FaultValues
	Timesteps int
}

// NewModel builds a model with the paper's evaluation parameters
// (Section 5.1): θ = 0.5, ωmax = 20θ, ESF θ̂ = 0.1θ, HSF θ̂ = 1.9θ,
// ω̂ = 2θ, observation window of 4 timesteps.
func NewModel(layerWidths ...int) *Model {
	params := snn.DefaultParams()
	return &Model{
		Arch:      Arch(layerWidths),
		Params:    params,
		Values:    fault.PaperValues(params.Theta),
		Timesteps: 4,
	}
}

// FourLayerModel returns the paper's 576-256-32-10 evaluation model.
func FourLayerModel() *Model { return NewModel(576, 256, 32, 10) }

// FiveLayerModel returns the paper's 576-256-64-32-10 evaluation model.
func FiveLayerModel() *Model { return NewModel(576, 256, 64, 32, 10) }

// Generator returns a test generator for the model under a regime.
func (m *Model) Generator(regime Regime) (*Generator, error) {
	return core.NewGenerator(core.Options{
		Arch:      m.Arch,
		Params:    m.Params,
		Values:    m.Values,
		Regime:    regime,
		Timesteps: m.Timesteps,
	})
}

// Suite groups the generated test sets of all five fault models.
type Suite struct {
	PerKind map[FaultKind]*TestSet
	// Merged is the full test program in tester order, with the shared
	// NASF/SASF configuration applied once.
	Merged *TestSet
}

// TotalTestLength sums per-kind test lengths, the number the paper's
// "73,826x shorter" claim compares.
func (s *Suite) TotalTestLength() int {
	// Walk the models in presentation order rather than ranging over the
	// map: the sum is order-independent, but the determinism analyzer bans
	// map iteration wholesale on artifact-producing paths, and the fixed
	// order costs nothing.
	n := 0
	for _, k := range fault.Kinds() {
		if ts, ok := s.PerKind[k]; ok {
			n += ts.TestLength()
		}
	}
	return n
}

// GenerateSuite generates the test sets of all five fault models.
func (m *Model) GenerateSuite(regime Regime) (*Suite, error) {
	g, err := m.Generator(regime)
	if err != nil {
		return nil, err
	}
	perKind, merged := g.GenerateAll()
	return &Suite{PerKind: perKind, Merged: merged}, nil
}

// Universe enumerates the fault universe of one model for the chip family.
func (m *Model) Universe(kind FaultKind) []Fault {
	return fault.Universe(m.Arch, kind)
}

// QuantizeTransform adapts a quantization scheme into the configuration
// transform the ATE and fault simulator accept. nil scheme means identity.
func QuantizeTransform(scheme *QuantScheme) faultsim.ConfigTransform {
	if scheme == nil {
		return nil
	}
	s := *scheme
	return func(n *Network) *Network {
		c, _ := s.QuantizedClone(n)
		return c
	}
}

// NewATE builds test equipment for a test set, optionally quantizing every
// configuration the way the chip's weight memory would.
func (m *Model) NewATE(ts *TestSet, scheme *QuantScheme) *ATE {
	return tester.New(ts, QuantizeTransform(scheme))
}

// MeasureCoverage fault-simulates ts against the full universe of kind and
// returns the coverage, optionally under quantization.
func (m *Model) MeasureCoverage(kind FaultKind, ts *TestSet, scheme *QuantScheme) (CoverageResult, error) {
	return m.MeasureCoverageContext(context.Background(), kind, ts, scheme)
}

// MeasureCoverageContext is MeasureCoverage with cooperative cancellation
// and trace propagation: when ctx carries an obs span (see internal/obs),
// the campaign's fault-simulation phase is recorded under it.
func (m *Model) MeasureCoverageContext(ctx context.Context, kind FaultKind, ts *TestSet, scheme *QuantScheme) (CoverageResult, error) {
	if ts == nil {
		return CoverageResult{}, fmt.Errorf("neurotest: nil test set")
	}
	ate := m.NewATE(ts, scheme)
	return ate.MeasureCoverageContext(ctx, m.Universe(kind), m.Values)
}

// Unreliable-chip session types re-exported from internal/unreliable and
// internal/tester: reliability models for intermittent faults and noisy
// readout, plus the ATE retest/quarantine policy layered on top.
type (
	// Intermittence gates a defect's activity per applied test item.
	Intermittence = unreliable.Intermittence
	// Readout corrupts observed spike counts (jitter, dropped reads).
	Readout = unreliable.Readout
	// ReliabilityProfile composes the reliability models of one chip.
	ReliabilityProfile = unreliable.Profile
	// RetestPolicy governs retest-on-fail budgets and voting.
	RetestPolicy = tester.RetestPolicy
	// SessionReport is the three-way verdict and accounting of one session.
	SessionReport = tester.SessionReport
	// SessionStats aggregates a population of chip sessions.
	SessionStats = tester.SessionStats
	// Outcome is the session verdict: Pass, Fail or Quarantine.
	Outcome = tester.Outcome
)

// Session outcome constants.
const (
	OutcomePass       = tester.Pass
	OutcomeFail       = tester.Fail
	OutcomeQuarantine = tester.Quarantine
)

// ReliableChip returns the profile of the paper's deterministic evaluation:
// the defect is permanently active and the readout is perfect. Sessions
// under it with a zero RetestPolicy reproduce plain RunChip verdicts.
func ReliableChip() ReliabilityProfile { return unreliable.Reliable() }

// Diagnosis types re-exported from internal/diagnose.
type (
	// FaultDictionary maps pass/fail signatures to candidate faults.
	FaultDictionary = diagnose.Dictionary
	// FailSignature is a per-item pass/fail bitmask observed on a tester.
	FailSignature = diagnose.Signature
	// CompactionStats reports what test-set compaction achieved.
	CompactionStats = compact.Stats
)

// BuildDictionary fault-simulates every fault in faults against every item
// of ts and returns a diagnosis dictionary (see internal/diagnose).
func (m *Model) BuildDictionary(ts *TestSet, scheme *QuantScheme, faults []Fault) *FaultDictionary {
	return diagnose.Build(ts, m.Values, QuantizeTransform(scheme), faults)
}

// DiagnoseChip runs the full test program against a (possibly defective)
// chip and returns its observed pass/fail signature for dictionary lookup.
func (m *Model) DiagnoseChip(ts *TestSet, scheme *QuantScheme, defect *snn.Modifiers) FailSignature {
	return diagnose.ObserveChip(ts, QuantizeTransform(scheme), defect)
}

// CompactTestSet removes items whose detected faults are all covered by
// other items, preserving coverage of faults exactly (see internal/compact).
func (m *Model) CompactTestSet(ts *TestSet, scheme *QuantScheme, faults []Fault) (*TestSet, CompactionStats) {
	return compact.Compact(ts, m.Values, QuantizeTransform(scheme), faults)
}
