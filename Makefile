GO ?= go

.PHONY: check fmt build vet neurolint lint-self lint-json test race fuzz bench serve fleet

# check is the tier-1 gate: everything CI runs, runnable locally.
check: fmt vet build neurolint lint-self lint-json test race

# fmt fails (listing the offenders) when any file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# neurolint runs the project's own static-analysis suite (internal/lint,
# DESIGN.md §10): exhaustive fault-model switches, determinism of
# artifact-producing paths, explicit float comparison semantics, panic-free
# libraries and supervised concurrency. Non-zero exit on any un-suppressed
# finding.
neurolint:
	$(GO) run ./cmd/neurolint ./...

# lint-self turns the suite on its own implementation: the analyzer
# framework and the command must satisfy every invariant they enforce
# (fixture trees under testdata/ are skipped by Expand, as everywhere).
lint-self:
	$(GO) run ./cmd/neurolint ./internal/lint/... ./cmd/neurolint

# lint-json asserts the machine-readable contract: the -json report must
# parse and carry its two top-level fields. Findings themselves do not
# fail this step (the neurolint target gates on them); a malformed
# document does.
lint-json:
	@report="$$($(GO) run ./cmd/neurolint -json ./... || true)"; \
	printf '%s\n' "$$report" | jq -e 'has("count") and has("findings")' > /dev/null \
		&& echo "neurolint -json: valid report"

# -shuffle=on randomizes test order so inter-test coupling cannot hide.
test:
	$(GO) test -shuffle=on ./...

# The whole module runs under the race detector; campaign pools, the
# reliability models and the daemon are the heavy users, but nothing is
# exempt.
race:
	$(GO) test -race ./...

# fuzz smokes the codec and service fuzz targets for a few seconds each —
# not a soak, just enough to catch regressions in the corners the corpus
# already maps.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzServedSuites -fuzztime=10s ./internal/pattern
	$(GO) test -run='^$$' -fuzz=FuzzReadBinary -fuzztime=10s ./internal/pattern
	$(GO) test -run='^$$' -fuzz=FuzzReadJSON -fuzztime=10s ./internal/pattern
	$(GO) test -run='^$$' -fuzz=FuzzDetector -fuzztime=10s ./internal/online
	$(GO) test -run='^$$' -fuzz=FuzzRepairPlan -fuzztime=10s ./internal/repair
	$(GO) test -run='^$$' -fuzz=FuzzPackedEquivalence -fuzztime=10s ./internal/faultsim

# bench runs the performance suite — the paper-evaluation benchmarks in the
# root package plus the internal/obs instrument and internal/snn simulator
# micro-benches — and records the machine-readable Go benchmark output under
# results/bench.txt. Narrow with BENCH (regexp) or shorten with BENCHTIME
# (e.g. 10x).
BENCH ?= .
BENCHTIME ?= 1s
BENCHPKGS ?= . ./internal/obs ./internal/snn ./internal/faultsim
bench:
	@mkdir -p results
	$(GO) test -run='^$$' -bench='$(BENCH)' -benchtime=$(BENCHTIME) -benchmem $(BENCHPKGS) | tee results/bench.txt

# serve runs the neurotestd test-floor daemon on its default address.
serve:
	$(GO) run ./cmd/neurotestd

# fleet runs the distributed-floor load generator at benchmark scale
# (1-worker vs 3-worker rings behind a coordinator, thousands of concurrent
# client sessions) and records the report under results/BENCH_cluster.json.
# Fails if the 3-worker ring is under 2x single-node throughput or the p99
# latency SLO is missed. FLEETFLAGS overrides or extends the defaults.
FLEETFLAGS ?=
fleet:
	@mkdir -p results
	$(GO) run ./cmd/neurofleet -out results/BENCH_cluster.json $(FLEETFLAGS)
