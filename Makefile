GO ?= go

.PHONY: check build vet test race bench

# check is the tier-1 gate: everything CI runs, runnable locally.
check: vet build test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The session layer and the reliability models are the concurrency-heavy
# packages; run them under the race detector explicitly.
race:
	$(GO) test -race ./internal/tester/... ./internal/unreliable/...

bench:
	$(GO) test -bench=. -benchmem
