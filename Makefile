GO ?= go

.PHONY: check fmt build vet test race bench serve

# check is the tier-1 gate: everything CI runs, runnable locally.
check: fmt vet build test race

# fmt fails (listing the offenders) when any file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The session layer, the reliability models and the daemon are the
# concurrency-heavy packages; run them under the race detector explicitly.
race:
	$(GO) test -race ./internal/tester/... ./internal/unreliable/... ./internal/service/...

bench:
	$(GO) test -bench=. -benchmem

# serve runs the neurotestd test-floor daemon on its default address.
serve:
	$(GO) run ./cmd/neurotestd
