module neurotest

go 1.22
