package neurotest_test

import (
	"testing"

	"neurotest"
)

func TestModelConstructors(t *testing.T) {
	four := neurotest.FourLayerModel()
	if four.Arch.String() != "576-256-32-10" {
		t.Errorf("FourLayerModel arch = %v", four.Arch)
	}
	five := neurotest.FiveLayerModel()
	if five.Arch.String() != "576-256-64-32-10" {
		t.Errorf("FiveLayerModel arch = %v", five.Arch)
	}
	// Paper parameters (Section 5.1).
	if four.Params.Theta != 0.5 || four.Params.WMax != 10 {
		t.Errorf("params = %+v", four.Params)
	}
	if four.Values.ESFTheta != 0.05 || four.Values.HSFTheta != 0.95 || four.Values.SWFOmega != 1.0 {
		t.Errorf("values = %+v", four.Values)
	}
}

func TestGenerateSuiteCounts(t *testing.T) {
	m := neurotest.NewModel(48, 24, 12, 6)
	suite, err := m.GenerateSuite(neurotest.NoVariation())
	if err != nil {
		t.Fatal(err)
	}
	want := map[neurotest.FaultKind]int{
		neurotest.NASF: 1,
		neurotest.SASF: 1,
		neurotest.ESF:  3, // L-1
		neurotest.HSF:  6, // 2(L-1)
		neurotest.SWF:  3, // L-1 for ω̂ > θ
	}
	for kind, n := range want {
		if got := suite.PerKind[kind].NumPatterns(); got != n {
			t.Errorf("%v patterns = %d, want %d", kind, got, n)
		}
	}
	if suite.TotalTestLength() != 14 {
		t.Errorf("total test length = %d, want 14", suite.TotalTestLength())
	}
	// Merged deduplicates the NASF/SASF configuration.
	if suite.Merged.NumPatterns() != 13 {
		t.Errorf("merged patterns = %d, want 13", suite.Merged.NumPatterns())
	}
}

func TestEndToEndCoverage(t *testing.T) {
	m := neurotest.NewModel(48, 24, 12, 6)
	suite, err := m.GenerateSuite(neurotest.NoVariation())
	if err != nil {
		t.Fatal(err)
	}
	for kind, ts := range suite.PerKind {
		cov, err := m.MeasureCoverage(kind, ts, nil)
		if err != nil {
			t.Fatal(err)
		}
		if cov.Coverage() != 100 {
			t.Errorf("%v coverage = %v", kind, cov)
		}
	}
	// And under the paper's 4-bit quantization claim.
	scheme, err := neurotest.NewQuantScheme(4, neurotest.PerChannel)
	if err != nil {
		t.Fatal(err)
	}
	for kind, ts := range suite.PerKind {
		cov, err := m.MeasureCoverage(kind, ts, &scheme)
		if err != nil {
			t.Fatal(err)
		}
		if cov.Coverage() != 100 {
			t.Errorf("%v coverage at 4-bit per-channel = %v", kind, cov)
		}
	}
}

func TestMeasureCoverageNilSet(t *testing.T) {
	m := neurotest.NewModel(4, 3)
	if _, err := m.MeasureCoverage(neurotest.SWF, nil, nil); err == nil {
		t.Errorf("nil test set accepted")
	}
}

func TestRegimeHelpers(t *testing.T) {
	if neurotest.NoVariation().Consider {
		t.Errorf("NoVariation considers variation")
	}
	if !neurotest.NegligibleVariation().Consider {
		t.Errorf("NegligibleVariation does not consider variation")
	}
	r := neurotest.RegimeForSigma(10, 0.05, 3)
	if !r.Consider || r.Nu != 1111 {
		t.Errorf("RegimeForSigma = %+v", r)
	}
}

func TestVariationOfTheta(t *testing.T) {
	v := neurotest.VariationOfTheta(0.10, 0.5)
	if v.Sigma != 0.05 {
		t.Errorf("sigma = %g", v.Sigma)
	}
}

func TestUniverseSizes(t *testing.T) {
	m := neurotest.FourLayerModel()
	if got := len(m.Universe(neurotest.ESF)); got != 298 {
		t.Errorf("ESF universe = %d", got)
	}
	if got := len(m.Universe(neurotest.SWF)); got != 155968 {
		t.Errorf("SWF universe = %d", got)
	}
}

func TestATEFlow(t *testing.T) {
	m := neurotest.NewModel(24, 12, 6)
	suite, err := m.GenerateSuite(neurotest.NoVariation())
	if err != nil {
		t.Fatal(err)
	}
	ate := m.NewATE(suite.Merged, nil)
	v := ate.RunChip(nil, neurotest.VariationOfTheta(0, 0.5), nil)
	if !v.Passed {
		t.Errorf("good chip failed: %+v", v)
	}
	// A faulty chip fails.
	f := m.Universe(neurotest.HSF)[0]
	v = ate.RunChip(f.Modifiers(m.Values), neurotest.VariationOfTheta(0, 0.5), nil)
	if v.Passed {
		t.Errorf("HSF chip passed")
	}
}

func TestQuantizeTransform(t *testing.T) {
	if neurotest.QuantizeTransform(nil) != nil {
		t.Errorf("nil scheme should produce nil transform")
	}
	s, err := neurotest.NewQuantScheme(8, neurotest.PerChannel)
	if err != nil {
		t.Fatal(err)
	}
	tf := neurotest.QuantizeTransform(&s)
	m := neurotest.NewModel(4, 3)
	g, err := m.Generator(neurotest.NoVariation())
	if err != nil {
		t.Fatal(err)
	}
	ts := g.Generate(neurotest.NASF)
	out := tf(ts.Configs[0])
	if out == ts.Configs[0] {
		t.Errorf("transform returned the original network")
	}
}

func TestDictionaryAndCompactionFacade(t *testing.T) {
	m := neurotest.NewModel(24, 12, 6)
	suite, err := m.GenerateSuite(neurotest.NoVariation())
	if err != nil {
		t.Fatal(err)
	}
	var faults []neurotest.Fault
	for _, k := range []neurotest.FaultKind{neurotest.NASF, neurotest.ESF, neurotest.HSF} {
		faults = append(faults, m.Universe(k)...)
	}
	dict := m.BuildDictionary(suite.Merged, nil, faults)
	if dict.Detected() != dict.Total() {
		t.Fatalf("dictionary detected %d/%d", dict.Detected(), dict.Total())
	}
	// Diagnose an injected defect through the facade.
	f := m.Universe(neurotest.HSF)[3]
	sig := m.DiagnoseChip(suite.Merged, nil, f.Modifiers(m.Values))
	if !sig.AnyFail() {
		t.Fatal("defective chip passed")
	}
	found := false
	for _, c := range dict.Lookup(sig) {
		if c == f {
			found = true
		}
	}
	if !found {
		t.Errorf("injected fault missing from diagnosis")
	}
	// Compaction through the facade preserves coverage.
	compacted, st := m.CompactTestSet(suite.Merged, nil, faults)
	if st.ItemsAfter > st.ItemsBefore || compacted.NumPatterns() != st.ItemsAfter {
		t.Errorf("compaction stats inconsistent: %+v", st)
	}
}
